package proc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snapify/internal/blob"
	"snapify/internal/phi"
	"snapify/internal/simclock"
)

func TestRegionAllocationAgainstBudget(t *testing.T) {
	bud := phi.NewMemBudget(1000)
	p := New("offload_proc", 1, 1, bud)
	r, err := p.AddRegion("heap", RegionHeap, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 600 || r.Kind() != RegionHeap || r.Name() != "heap" {
		t.Errorf("region shape wrong: %d %v %q", r.Size(), r.Kind(), r.Name())
	}
	if _, err := p.AddRegion("heap2", RegionHeap, 600, 2); err == nil {
		t.Fatal("over-budget allocation must fail")
	}
	if _, err := p.AddRegion("heap", RegionHeap, 1, 3); err == nil {
		t.Fatal("duplicate region name must fail")
	}
	if err := p.RemoveRegion("heap"); err != nil {
		t.Fatal(err)
	}
	if bud.Used() != 0 {
		t.Errorf("budget used = %d after region removal", bud.Used())
	}
	if err := p.RemoveRegion("heap"); err == nil {
		t.Error("removing missing region must not succeed")
	}
}

func TestTerminateReleasesMemory(t *testing.T) {
	bud := phi.NewMemBudget(1000)
	p := New("offload_proc", 1, 1, bud)
	p.AddRegion("a", RegionHeap, 300, 0)
	p.AddRegion("b", RegionData, 200, 0)
	if p.MemBytes() != 500 {
		t.Errorf("MemBytes = %d", p.MemBytes())
	}
	p.Terminate()
	if bud.Used() != 0 {
		t.Errorf("budget used = %d after terminate", bud.Used())
	}
	if p.State() != Terminated {
		t.Error("state not terminated")
	}
	if _, err := p.AddRegion("c", RegionHeap, 10, 0); !errors.Is(err, ErrTerminated) {
		t.Errorf("AddRegion after terminate: %v", err)
	}
	p.Terminate() // idempotent
}

func TestRegionsOrderedAndLookup(t *testing.T) {
	p := New("p", 1, 0, nil)
	p.AddRegion("data", RegionData, 10, 0)
	p.AddRegion("heap", RegionHeap, 10, 0)
	p.AddRegion("stack0", RegionStack, 10, 0)
	rs := p.Regions()
	if len(rs) != 3 || rs[0].Name() != "data" || rs[2].Name() != "stack0" {
		t.Errorf("region order wrong: %v", rs)
	}
	if p.Region("heap") == nil || p.Region("nope") != nil {
		t.Error("Region lookup wrong")
	}
}

func TestExitWatchersAndExpectedExit(t *testing.T) {
	p := New("p", 1, 1, nil)
	var crashSeen, expectedSeen atomic.Bool
	p.OnExit(func(_ *Process, expected bool) {
		if expected {
			expectedSeen.Store(true)
		} else {
			crashSeen.Store(true)
		}
	})
	p.AnnounceExit()
	p.Terminate()
	p.Wait()
	if crashSeen.Load() {
		t.Error("announced exit reported as crash")
	}
	if !expectedSeen.Load() {
		t.Error("watcher not called")
	}

	// Watcher registered after exit still fires.
	done := make(chan bool, 1)
	p.OnExit(func(_ *Process, expected bool) { done <- expected })
	select {
	case exp := <-done:
		if !exp {
			t.Error("late watcher saw unexpected exit")
		}
	case <-time.After(time.Second):
		t.Fatal("late watcher never fired")
	}
}

func TestUnexpectedExitIsCrash(t *testing.T) {
	p := New("p", 1, 1, nil)
	got := make(chan bool, 1)
	p.OnExit(func(_ *Process, expected bool) { got <- expected })
	p.Terminate()
	if exp := <-got; exp {
		t.Error("unannounced exit reported as expected")
	}
}

func TestSignals(t *testing.T) {
	p := New("p", 1, 0, nil)
	fired := make(chan struct{}, 1)
	p.HandleSignal(SigSnapify, func() { fired <- struct{}{} })
	if err := p.Deliver(SigSnapify); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("handler never ran")
	}
	if err := p.Deliver(SigCheckpoint); err == nil {
		t.Error("unhandled signal must error")
	}
	p.HandleSignal(SigSnapify, nil)
	if err := p.Deliver(SigSnapify); err == nil {
		t.Error("removed handler must error")
	}
	p.Terminate()
	if err := p.Deliver(SigSnapify); !errors.Is(err, ErrTerminated) {
		t.Errorf("signal to dead process: %v", err)
	}
}

func TestThreadTracking(t *testing.T) {
	p := New("p", 1, 0, nil)
	release := make(chan struct{})
	for i := 0; i < 3; i++ {
		if err := p.SpawnThread("worker", func() { <-release }); err != nil {
			t.Fatal(err)
		}
	}
	if p.ThreadCount() != 3 {
		t.Errorf("ThreadCount = %d", p.ThreadCount())
	}
	if names := p.ThreadNames(); len(names) != 3 || names[0] != "worker" {
		t.Errorf("ThreadNames = %v", names)
	}
	close(release)
	waitFor(t, func() bool { return p.ThreadCount() == 0 })
	p.Terminate()
	if err := p.SpawnThread("late", func() {}); !errors.Is(err, ErrTerminated) {
		t.Errorf("spawn after terminate: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestStepGateDrainsInFlightSteps(t *testing.T) {
	p := New("p", 1, 1, nil)
	inStep := make(chan struct{})
	finish := make(chan struct{})
	go func() {
		p.BeginStep()
		inStep <- struct{}{}
		<-finish
		p.EndStep()
	}()
	<-inStep

	paused := make(chan struct{})
	go func() {
		p.PauseSteps()
		close(paused)
	}()
	select {
	case <-paused:
		t.Fatal("PauseSteps returned while a step was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(finish)
	select {
	case <-paused:
	case <-time.After(time.Second):
		t.Fatal("PauseSteps never completed")
	}
	if p.StepActive() != 0 || !p.StepsPaused() {
		t.Errorf("gate state: active=%d paused=%v", p.StepActive(), p.StepsPaused())
	}

	// New steps block until resume.
	entered := make(chan struct{})
	go func() {
		p.BeginStep()
		close(entered)
		p.EndStep()
	}()
	select {
	case <-entered:
		t.Fatal("step entered while paused")
	case <-time.After(20 * time.Millisecond):
	}
	p.ResumeSteps()
	select {
	case <-entered:
	case <-time.After(time.Second):
		t.Fatal("step never resumed")
	}
}

func TestStepGateShutdownUnblocks(t *testing.T) {
	p := New("p", 1, 1, nil)
	p.PauseSteps()
	errc := make(chan error, 1)
	go func() { errc <- p.BeginStep() }()
	p.Terminate()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrGateShutdown) {
			t.Errorf("BeginStep after shutdown: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("BeginStep never unblocked")
	}
}

func TestPipeSendRecv(t *testing.T) {
	a, b := NewPipe(simclock.Default())
	go func() {
		a.Send([]byte("pause"))
		a.Send([]byte("capture"))
	}()
	m1, d, err := b.Recv()
	if err != nil || string(m1) != "pause" || d <= 0 {
		t.Fatalf("recv 1: %q %v %v", m1, d, err)
	}
	m2, _, _ := b.Recv()
	if string(m2) != "capture" {
		t.Fatalf("recv 2: %q", m2)
	}
	// Bidirectional.
	b.Send([]byte("ack"))
	m3, _, _ := a.Recv()
	if string(m3) != "ack" {
		t.Fatalf("reverse recv: %q", m3)
	}
}

func TestPipeTryRecvAndClose(t *testing.T) {
	a, b := NewPipe(simclock.Default())
	if _, _, ok, err := b.TryRecv(); ok || err != nil {
		t.Fatal("TryRecv on empty pipe")
	}
	a.Send([]byte("x"))
	if m, _, ok, _ := b.TryRecv(); !ok || string(m) != "x" {
		t.Fatal("TryRecv missed message")
	}
	a.Send([]byte("queued"))
	a.Close()
	// Queued message drains, then closed.
	if m, _, err := b.Recv(); err != nil || string(m) != "queued" {
		t.Fatalf("drain after close: %q %v", m, err)
	}
	if _, _, err := b.Recv(); !errors.Is(err, ErrPipeClosed) {
		t.Errorf("recv on closed: %v", err)
	}
	if _, err := b.Send([]byte("y")); !errors.Is(err, ErrPipeClosed) {
		t.Errorf("send on closed: %v", err)
	}
}

func TestPipeCloseUnblocksReceiver(t *testing.T) {
	a, b := NewPipe(simclock.Default())
	errc := make(chan error, 1)
	go func() {
		_, _, err := b.Recv()
		errc <- err
	}()
	a.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrPipeClosed) {
			t.Errorf("blocked recv: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("recv never unblocked")
	}
}

func TestTableSpawnLookup(t *testing.T) {
	tab := NewTable()
	p1 := tab.Spawn("host_proc", 0, nil)
	p2 := tab.Spawn("offload_proc", 1, nil)
	if p1.PID() == p2.PID() {
		t.Fatal("duplicate PIDs")
	}
	got, err := tab.Lookup(p1.PID())
	if err != nil || got != p1 {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	if tab.Count() != 2 {
		t.Errorf("Count = %d", tab.Count())
	}
	p1.Terminate()
	waitFor(t, func() bool { return tab.Count() == 1 })
	if _, err := tab.Lookup(p1.PID()); err == nil {
		t.Error("dead process still resolvable")
	}
}

func TestRegionSnapshotRestoreThroughProcess(t *testing.T) {
	p := New("p", 1, 1, nil)
	r, _ := p.AddRegion("heap", RegionHeap, 1<<16, 42)
	r.WriteAt([]byte("application state"), 1000)
	snap := r.Snapshot()

	q := New("q", 2, 2, nil)
	r2, _ := q.AddRegion("heap", RegionHeap, 1<<16, 42)
	r2.Restore(snap)
	if !blob.Equal(r2.Snapshot(), snap) {
		t.Error("restored region content differs")
	}
}

func TestRegionConcurrentAccess(t *testing.T) {
	p := New("p", 1, 1, nil)
	r, _ := p.AddRegion("heap", RegionHeap, 4096, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 16)
			for j := 0; j < 100; j++ {
				r.WriteAt(buf, int64(i*256))
				r.ReadAt(buf, int64(i*256))
				r.SnapshotRange(0, 4096)
			}
		}(i)
	}
	wg.Wait()
}

func TestPinTracking(t *testing.T) {
	p := New("p", 1, 1, nil)
	r, _ := p.AddRegion("buf", RegionLocalStore, 100, 0)
	if r.Pinned() {
		t.Error("fresh region pinned")
	}
	r.Pin()
	if !r.Pinned() {
		t.Error("Pin did not stick")
	}
	r.Unpin()
	if r.Pinned() {
		t.Error("Unpin did not stick")
	}
}
