package experiments

// The fleet benchmark drives the fleetd control plane's model backend
// at cluster scale: a seeded bursty trace of jobs arrives open-loop
// against a fleet of hosts, once per oversubscription ratio. The
// object of study is the utilization-vs-oversubscription curve — how
// much extra throughput swap-based memory oversubscription buys and
// what it costs in swap latency — plus the controller's wall-clock
// placement rate (the event core's O(log n) claim at scale).

import (
	"encoding/json"
	"fmt"

	"snapify/internal/fleetd"
	"snapify/internal/obs"
	"snapify/internal/simclock"
	"snapify/internal/trace"
)

// Fleet trace timing scales: bursts 20-90ms, thinks 400-3200ms. The
// think phases dwarf the ~0.5s swap cycle of a 1/8th-card job, so
// evicting thinkers is profitable — the regime the oversubscription
// sweep is designed to expose.
const (
	fleetBurstScale = 10
	fleetThinkScale = 400
)

// fleetEvacAt / fleetEvacDeadline: each run drains its first host in
// the middle of the arrival storm, so every row also carries an
// evacuation wave under churn.
const (
	fleetEvacAt       = 500 * simclock.Duration(1e6)
	fleetEvacDeadline = 120000 * simclock.Duration(1e6)
)

// FleetParams sizes a FleetBench run. Every field rides in the result
// document so the regression gate replays the exact configuration.
type FleetParams struct {
	Hosts        int
	CardsPerHost int
	CardMem      int64
	Jobs         int
	Tenants      int
	QueueDepth   int
	Seed         uint64
	Ratios       []int
}

// DefaultFleetParams is the full-scale configuration: 120 hosts and
// 2400 jobs — past the 100-host / 1000-job floor, with aggregate
// memory demand ~3.6x the fleet's commit capacity at 100%, so the
// baseline queues and the oversubscribed rows have headroom to win.
func DefaultFleetParams() FleetParams {
	return FleetParams{
		Hosts: 120, CardsPerHost: 1, CardMem: 256 * simclock.MiB,
		Jobs: 2400, Tenants: 8, QueueDepth: 512, Seed: 42,
		Ratios: []int{100, 150, 200},
	}
}

// SmokeFleetParams is the CI-scale configuration with the same demand
// shape (~3.6x commit capacity) at a tenth the size.
func SmokeFleetParams() FleetParams {
	return FleetParams{
		Hosts: 12, CardsPerHost: 1, CardMem: 256 * simclock.MiB,
		Jobs: 240, Tenants: 4, QueueDepth: 128, Seed: 42,
		Ratios: []int{100, 200},
	}
}

// FleetRow is one oversubscription ratio's run.
type FleetRow struct {
	OversubPct int `json:"oversub_pct"`

	Admitted   int64 `json:"admitted"`
	Rejected   int64 `json:"rejected"`
	Completed  int64 `json:"completed"`
	Placements int64 `json:"placements"`

	Preemptions   int64 `json:"preemptions"`
	PreemptAborts int64 `json:"preempt_aborts"`
	SwapOuts      int64 `json:"swap_outs"`
	SwapIns       int64 `json:"swap_ins"`

	EvacMoves       int64 `json:"evac_moves"`
	EvacWaves       int64 `json:"evac_waves"`
	EvacDeadlineMet bool  `json:"evac_deadline_met"`

	MakespanNs int64 `json:"makespan_ns"`
	// UtilizationPct is mean busy card fraction in basis points
	// (10000 = every card bursting for the whole run).
	UtilizationPct int64 `json:"utilization_pct_x100"`
	SwapP50Ns      int64 `json:"swap_p50_ns"`
	SwapP99Ns      int64 `json:"swap_p99_ns"`
	QueueWaitP99Ns int64 `json:"queue_wait_p99_ns"`

	// Events and HeapComparisons pin the event core's O(log n) shape:
	// comparisons per event must stay logarithmic in the heap size.
	Events          int64 `json:"events"`
	HeapComparisons int64 `json:"heap_comparisons"`

	// Wall-clock self-profiling (excluded from the regression gate).
	RowWallNs              int64 `json:"row_wall_ns"`
	WallPlacementsPerSec   int64 `json:"wall_placements_per_sec"`
	WallEventsPerSec       int64 `json:"wall_events_per_sec"`
	WallPlacementLatencyNs int64 `json:"wall_ns_per_placement"`
}

// FleetResult is the full BENCH_fleet.json document.
type FleetResult struct {
	Benchmark    string     `json:"benchmark"`
	Hosts        int        `json:"hosts"`
	CardsPerHost int        `json:"cards_per_host"`
	CardMemBytes int64      `json:"card_mem_bytes"`
	Jobs         int        `json:"jobs"`
	Tenants      int        `json:"tenants"`
	QueueDepth   int        `json:"queue_depth"`
	Seed         uint64     `json:"seed"`
	Rows         []FleetRow `json:"rows"`
	WallTotalNs  int64      `json:"wall_total_ns"`

	tracer *obs.Tracer // the highest-ratio run's tracer, for TraceJSON
}

// TraceJSON exports the highest-oversubscription run's control-plane
// trace as Chrome trace-event JSON: one process per host with a lane
// per card (launch/swap/migrate/recover ops), plus a process of
// per-job lanes (bursts, thinks, swap waits).
func (r *FleetResult) TraceJSON() []byte {
	return r.tracer.ChromeTrace()
}

// FleetBench runs the seeded trace once per oversubscription ratio
// against a fresh model-backed fleet and collects the curve.
func FleetBench(p FleetParams) (*FleetResult, error) {
	if p.Hosts < 2 || p.CardsPerHost < 1 || p.Jobs < 1 || len(p.Ratios) < 2 {
		return nil, fmt.Errorf("fleet: need >= 2 hosts, >= 1 card, >= 1 job, >= 2 ratios; got %+v", p)
	}
	total := simclock.StartWall()
	res := &FleetResult{
		Benchmark: "fleet",
		Hosts:     p.Hosts, CardsPerHost: p.CardsPerHost, CardMemBytes: p.CardMem,
		Jobs: p.Jobs, Tenants: p.Tenants, QueueDepth: p.QueueDepth, Seed: p.Seed,
	}
	specs := fleetd.GenerateTrace(fleetd.TraceConfig{
		Seed: p.Seed, Jobs: p.Jobs, Tenants: p.Tenants, CardMem: p.CardMem,
		BurstScale: fleetBurstScale, ThinkScale: fleetThinkScale,
	})
	for i, pct := range p.Ratios {
		wall := simclock.StartWall()
		be := fleetd.NewModelBackend(fleetd.ModelOptions{
			Hosts: p.Hosts, CardsPerHost: p.CardsPerHost, CardMem: p.CardMem,
		})
		// Only the last (highest-churn) ratio records a trace: one ratio's
		// spans per document keeps host/card track names unambiguous.
		o := obs.New()
		last := i == len(p.Ratios)-1
		c := fleetd.New(fleetd.Options{OversubPct: pct, QueueDepth: p.QueueDepth, Trace: last}, be, o)
		if last {
			res.tracer = o.TracerOf()
		}
		if err := c.SubmitTrace(specs); err != nil {
			return nil, fmt.Errorf("fleet: ratio %d: %w", pct, err)
		}
		c.ScheduleEvacuation(fleetEvacAt, "h000", fleetEvacDeadline)
		if err := c.Run(); err != nil {
			return nil, fmt.Errorf("fleet: ratio %d: %w", pct, err)
		}
		st := c.Stats()
		lats := c.SwapLatencies()
		waits := c.QueueWaits()
		row := FleetRow{
			OversubPct: pct,
			Admitted:   st.Admitted, Rejected: st.Rejected,
			Completed: st.Completed, Placements: st.Placements,
			Preemptions: st.Preemptions, PreemptAborts: st.PreemptAborts,
			SwapOuts: st.SwapOuts, SwapIns: st.SwapIns,
			EvacMoves: st.EvacMoves, EvacWaves: st.EvacWaves,
			MakespanNs:      int64(st.Makespan),
			UtilizationPct:  c.UtilizationPct(),
			SwapP50Ns:       int64(fleetd.Percentile(lats, 50)),
			SwapP99Ns:       int64(fleetd.Percentile(lats, 99)),
			QueueWaitP99Ns:  int64(fleetd.Percentile(waits, 99)),
			Events:          st.Events,
			HeapComparisons: c.EventComparisons(),
		}
		for _, r := range c.Evacuations() {
			if r.Host == "h000" {
				row.EvacDeadlineMet = r.Done && r.DeadlineMet
			}
		}
		row.RowWallNs = wall.ElapsedNs()
		if secs := row.RowWallNs; secs > 0 {
			row.WallPlacementsPerSec = row.Placements * 1e9 / secs
			row.WallEventsPerSec = row.Events * 1e9 / secs
		}
		if row.Placements > 0 {
			row.WallPlacementLatencyNs = row.RowWallNs / row.Placements
		}
		res.Rows = append(res.Rows, row)
	}
	res.WallTotalNs = total.ElapsedNs()
	return res, nil
}

// Render prints the curve in the tables' layout.
func (r *FleetResult) Render() string {
	t := trace.New(fmt.Sprintf("Fleet control plane: %d hosts x %d cards, %d jobs (seed %d), oversubscription sweep",
		r.Hosts, r.CardsPerHost, r.Jobs, r.Seed),
		"Oversub", "Adm/Rej", "Done", "Swaps out/in", "Preempt", "Evac", "Util %", "Swap p50/p99 (ms)", "Makespan (ms)", "Placements/s (wall)")
	for _, row := range r.Rows {
		t.Row(fmt.Sprintf("%d%%", row.OversubPct),
			fmt.Sprintf("%d/%d", row.Admitted, row.Rejected),
			fmt.Sprintf("%d", row.Completed),
			fmt.Sprintf("%d/%d", row.SwapOuts, row.SwapIns),
			fmt.Sprintf("%d", row.Preemptions),
			fmt.Sprintf("%d", row.EvacMoves),
			fmt.Sprintf("%d.%02d", row.UtilizationPct/100, row.UtilizationPct%100),
			fmt.Sprintf("%d/%d", row.SwapP50Ns/1e6, row.SwapP99Ns/1e6),
			fmt.Sprintf("%d", row.MakespanNs/1e6),
			fmt.Sprintf("%d", row.WallPlacementsPerSec))
	}
	return t.String() + fmt.Sprintf("\nharness wall-clock: %.1f ms", float64(r.WallTotalNs)/1e6)
}

// CheckShape verifies the acceptance claims: jobs are conserved at
// every ratio, everything admitted completes, the evacuation lands
// inside its deadline, oversubscription actually swaps and lifts
// utilization over the 100% baseline, and the event heap stays
// logarithmic.
func (r *FleetResult) CheckShape() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("fleet: %d rows, want >= 2 for a curve", len(r.Rows))
	}
	if r.Rows[0].OversubPct != 100 {
		return fmt.Errorf("fleet: first row is %d%%, want the 100%% baseline", r.Rows[0].OversubPct)
	}
	for _, row := range r.Rows {
		if row.Admitted+row.Rejected != int64(r.Jobs) {
			return fmt.Errorf("fleet: %d%%: admitted %d + rejected %d != %d jobs",
				row.OversubPct, row.Admitted, row.Rejected, r.Jobs)
		}
		if row.Completed != row.Admitted {
			return fmt.Errorf("fleet: %d%%: completed %d of %d admitted",
				row.OversubPct, row.Completed, row.Admitted)
		}
		if row.Placements < row.Admitted {
			return fmt.Errorf("fleet: %d%%: %d placements for %d admitted jobs",
				row.OversubPct, row.Placements, row.Admitted)
		}
		if row.UtilizationPct <= 0 || row.UtilizationPct > 10000 {
			return fmt.Errorf("fleet: %d%%: utilization %d out of (0, 10000]",
				row.OversubPct, row.UtilizationPct)
		}
		if !row.EvacDeadlineMet {
			return fmt.Errorf("fleet: %d%%: evacuation missed its deadline", row.OversubPct)
		}
		if row.Events > 64 && row.HeapComparisons > row.Events*3*logCeil(row.Events) {
			return fmt.Errorf("fleet: %d%%: %d heap comparisons for %d events — not O(log n)",
				row.OversubPct, row.HeapComparisons, row.Events)
		}
	}
	base, top := r.Rows[0], r.Rows[len(r.Rows)-1]
	if top.SwapOuts <= base.SwapOuts {
		return fmt.Errorf("fleet: %d%% swapped %d times vs %d at baseline — oversubscription inert",
			top.OversubPct, top.SwapOuts, base.SwapOuts)
	}
	if top.SwapP50Ns <= 0 || top.SwapP99Ns < top.SwapP50Ns {
		return fmt.Errorf("fleet: %d%%: swap p50 %d / p99 %d malformed",
			top.OversubPct, top.SwapP50Ns, top.SwapP99Ns)
	}
	if top.UtilizationPct <= base.UtilizationPct {
		return fmt.Errorf("fleet: utilization %d at %d%% vs %d at 100%% — oversubscription bought nothing",
			top.UtilizationPct, top.OversubPct, base.UtilizationPct)
	}
	return nil
}

// logCeil returns ceil(log2(n)) for n > 1.
func logCeil(n int64) int64 {
	var l int64 = 1
	for v := int64(2); v < n; v *= 2 {
		l++
	}
	return l
}

// JSON renders the benchmark as the BENCH_fleet.json document.
func (r *FleetResult) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
