// Package sched implements a COSMIC-style coprocessor job scheduler (the
// paper's motivating use case for process swapping and migration,
// Sections 1 and 5): multiple offload applications share a card whose
// physical memory cannot hold them all at once, so the scheduler swaps
// processes out to the host file system and back in under a round-robin
// policy, and proactively migrates processes away from a card a fault
// predictor has flagged.
package sched

import (
	"errors"
	"fmt"
	"sync"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/platform"
	"snapify/internal/simnet"
	"snapify/internal/workloads"
)

// JobState is a job's scheduling state.
type JobState int

const (
	// Resident means the offload process is on a card.
	Resident JobState = iota
	// SwappedOut means the process lives as a snapshot on the host.
	SwappedOut
	// Done means the job finished.
	Done
)

func (s JobState) String() string {
	switch s {
	case Resident:
		return "resident"
	case SwappedOut:
		return "swapped-out"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one scheduled offload application.
type Job struct {
	ID   int
	Spec workloads.Spec

	Inst     *workloads.Instance
	State    JobState
	Device   simnet.NodeID
	snapshot *core.Snapshot

	// Swaps counts swap-out events (tests and reports).
	Swaps int
}

// Scheduler shares a server's cards among jobs.
type Scheduler struct {
	plat *platform.Platform

	// Capture configures every swap-out and migration capture the
	// scheduler issues (Terminate is forced regardless). Setting
	// Capture.Store.Enabled routes snapshots through the host's dedup
	// store: a job swapped out repeatedly re-ships only what changed.
	Capture core.CaptureOptions
	// Restore configures every swap-in and migration restore.
	Restore core.RestoreOptions
	// Precopy configures live evacuation: with MaxRounds > 0 an Evacuate
	// pre-copies each job's image to the target card while the job keeps
	// running and pauses it only for the final delta. The zero value
	// defaults to a bounded live migration when the scheduler's captures
	// already go through the dedup store (pre-copy needs it), and to the
	// paper's stop-the-world migration otherwise.
	Precopy core.PrecopyOptions

	mu   sync.Mutex
	jobs []*Job
	// byID and resident are the O(1) indexes the fleet-scale control
	// plane leans on: job lookup by ID and the per-card resident set,
	// so victim picking scans one card's residents instead of every
	// job ever submitted.
	byID     map[int]*Job
	resident map[simnet.NodeID]map[int]*Job
	swaps    int
	nextID   int
}

// New returns a scheduler for the platform.
func New(plat *platform.Platform) *Scheduler {
	return &Scheduler{
		plat:     plat,
		byID:     make(map[int]*Job),
		resident: make(map[simnet.NodeID]map[int]*Job),
		nextID:   1,
	}
}

// Jobs returns all jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.jobs))
	copy(out, s.jobs)
	return out
}

// JobByID returns the job with the given ID, or nil.
func (s *Scheduler) JobByID(id int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// setResidentLocked moves j into device's resident set.
func (s *Scheduler) setResidentLocked(j *Job, device simnet.NodeID) {
	if cur, ok := s.resident[j.Device]; ok {
		delete(cur, j.ID)
	}
	set := s.resident[device]
	if set == nil {
		set = make(map[int]*Job)
		s.resident[device] = set
	}
	set[j.ID] = j
	j.Device = device
	j.State = Resident
}

// clearResidentLocked removes j from its card's resident set.
func (s *Scheduler) clearResidentLocked(j *Job) {
	if set, ok := s.resident[j.Device]; ok {
		delete(set, j.ID)
	}
}

// footprint estimates the card memory a job needs.
func footprint(spec workloads.Spec) int64 {
	return spec.DeviceMem + spec.LocalStore + 64*(1<<20) // runtime overhead
}

// Submit launches a job on device, swapping out resident jobs if the card
// lacks memory. It returns the job.
func (s *Scheduler) Submit(spec workloads.Spec, device simnet.NodeID) (*Job, error) {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.mu.Unlock()

	if err := s.makeRoom(device, footprint(spec)); err != nil {
		return nil, err
	}
	inst, err := workloads.Launch(s.plat, spec, device)
	if err != nil {
		return nil, fmt.Errorf("sched: launching job %d: %w", id, err)
	}
	j := &Job{ID: id, Spec: spec, Inst: inst, State: Resident, Device: device}
	s.mu.Lock()
	s.jobs = append(s.jobs, j)
	s.byID[id] = j
	s.setResidentLocked(j, device)
	s.mu.Unlock()
	return j, nil
}

// makeRoom swaps out resident jobs on device (oldest first) until need
// bytes are free.
func (s *Scheduler) makeRoom(device simnet.NodeID, need int64) error {
	for s.plat.Device(device).Mem.Free() < need {
		victim := s.pickVictim(device)
		if victim == nil {
			return fmt.Errorf("sched: cannot free %d bytes on %v: nothing left to swap", need, device)
		}
		if err := s.swapOut(victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim chooses the resident job on device with the least progress
// (closest to done keeps its memory the shortest on swap-in later; the
// policy is deliberately simple). It scans only device's resident set,
// breaking progress ties by lowest ID so the pick is deterministic.
func (s *Scheduler) pickVictim(device simnet.NodeID) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var victim *Job
	for _, j := range s.resident[device] { //nolint:maporder // min over a strict total order (progress, then ID tie-break) — the pick is identical in any iteration order
		if victim == nil ||
			j.Inst.Progress() < victim.Inst.Progress() ||
			(j.Inst.Progress() == victim.Inst.Progress() && j.ID < victim.ID) {
			victim = j
		}
	}
	return victim
}

func (s *Scheduler) swapOut(j *Job) error {
	snap, err := core.Swapout(fmt.Sprintf("/sched/job%d", j.ID), j.Inst.CP, s.Capture)
	if err != nil {
		return fmt.Errorf("sched: swapping out job %d: %w", j.ID, err)
	}
	s.mu.Lock()
	j.snapshot = snap
	j.State = SwappedOut
	j.Swaps++
	s.swaps++
	s.clearResidentLocked(j)
	s.mu.Unlock()
	return nil
}

// swapIn brings a swapped-out job back onto device, making room first.
func (s *Scheduler) swapIn(j *Job, device simnet.NodeID) error {
	if err := s.makeRoomExcept(device, footprint(j.Spec), j); err != nil {
		return err
	}
	if _, err := core.Swapin(j.snapshot, device, s.Restore); err != nil {
		return fmt.Errorf("sched: swapping in job %d: %w", j.ID, err)
	}
	s.mu.Lock()
	j.snapshot = nil
	s.setResidentLocked(j, device)
	s.mu.Unlock()
	return nil
}

// makeRoomExcept is makeRoom but never victimizes the given job.
func (s *Scheduler) makeRoomExcept(device simnet.NodeID, need int64, keep *Job) error {
	for s.plat.Device(device).Mem.Free() < need {
		victim := s.pickVictim(device)
		if victim == nil || victim == keep {
			return fmt.Errorf("sched: cannot free %d bytes on %v", need, device)
		}
		if err := s.swapOut(victim); err != nil {
			return err
		}
	}
	return nil
}

// RunRoundRobin runs every job to completion, giving each resident job a
// quantum of offload calls per round and swapping jobs in as their turn
// comes. It returns the total number of swap events.
func (s *Scheduler) RunRoundRobin(quantum int) (int, error) {
	if quantum < 1 {
		return 0, errors.New("sched: quantum must be positive")
	}
	for {
		active := 0
		for _, j := range s.Jobs() {
			if j.State == Done {
				continue
			}
			active++
			if j.State == SwappedOut {
				if err := s.swapIn(j, j.Device); err != nil {
					return s.totalSwaps(), err
				}
			}
			if _, err := j.Inst.RunCalls(quantum); err != nil {
				return s.totalSwaps(), fmt.Errorf("sched: job %d: %w", j.ID, err)
			}
			if j.Inst.Done() {
				s.mu.Lock()
				j.State = Done
				s.clearResidentLocked(j)
				s.mu.Unlock()
				j.Inst.Close()
			}
		}
		if active == 0 {
			return s.totalSwaps(), nil
		}
	}
}

func (s *Scheduler) totalSwaps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.swaps
}

// Drop releases every snapshot artifact a finished (or abandoned) job
// left on the host: store manifests for its context and delta files are
// released — at refcount zero they disappear and the next GC reclaims
// their unshared chunks — and plain files under the job's snapshot
// directories (runtime libraries, saved local stores) are removed. After
// all jobs are dropped, a GC leaves the store empty.
func (s *Scheduler) Drop(j *Job) {
	for _, dir := range []string{fmt.Sprintf("/sched/job%d", j.ID), fmt.Sprintf("/sched/evac%d", j.ID)} {
		if st := s.plat.Store; st != nil {
			for _, name := range []string{coi.ContextFileName, coi.DeltaFileName} {
				if p := dir + "/" + name; st.Has(p) {
					st.Release(p) //nolint:errcheck // best-effort cleanup; a release of a live manifest cannot fail, and a missing one is already gone
				}
			}
		}
		s.plat.Host().FS.RemoveAll(dir + "/")
	}
	s.mu.Lock()
	j.snapshot = nil
	s.mu.Unlock()
}

// evacPrecopy resolves the evacuation pre-copy policy: the explicit
// Precopy options when set, a bounded live migration when captures
// already route through the dedup store, stop-the-world otherwise.
func (s *Scheduler) evacPrecopy() core.PrecopyOptions {
	if s.Precopy.Enabled() {
		return s.Precopy
	}
	if s.Capture.Store.Enabled && s.plat.Store != nil {
		return core.PrecopyOptions{MaxRounds: 3}
	}
	return core.PrecopyOptions{}
}

// Evacuate migrates every resident job off device (a fault predictor
// flagged it, Section 1) onto target — live (pre-copy) when the
// scheduler's evacuation policy allows it, so the job keeps computing
// while its image moves. Swapped-out jobs simply retarget.
func (s *Scheduler) Evacuate(device, target simnet.NodeID) error {
	if device == target {
		return errors.New("sched: evacuation target is the failing card")
	}
	for _, j := range s.Jobs() {
		switch {
		case j.State == Resident && j.Device == device:
			if err := s.makeRoomExcept(target, footprint(j.Spec), j); err != nil {
				return err
			}
			opts := core.MigrateOptions{
				DeviceTo: target,
				Path:     fmt.Sprintf("/sched/evac%d", j.ID),
				Precopy:  s.evacPrecopy(),
				Capture:  s.Capture,
				Restore:  s.Restore,
			}
			if _, _, err := core.Migrate(j.Inst.CP, opts); err != nil {
				return fmt.Errorf("sched: migrating job %d: %w", j.ID, err)
			}
			s.mu.Lock()
			s.setResidentLocked(j, target)
			s.mu.Unlock()
		case j.State == SwappedOut && j.Device == device:
			s.mu.Lock()
			j.Device = target
			s.mu.Unlock()
		}
	}
	return nil
}
