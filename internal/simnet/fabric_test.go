package simnet

import (
	"testing"

	"snapify/internal/simclock"
)

func newTestFabric(t *testing.T, devices int) *Fabric {
	t.Helper()
	return NewFabric(simclock.Default(), devices)
}

func TestNodeNaming(t *testing.T) {
	if !HostNode.IsHost() {
		t.Error("host node not host")
	}
	if HostNode.String() != "host" {
		t.Errorf("host String = %q", HostNode.String())
	}
	if NodeID(1).String() != "mic0" || NodeID(2).String() != "mic1" {
		t.Errorf("device naming wrong: %q %q", NodeID(1), NodeID(2))
	}
}

func TestFabricTopology(t *testing.T) {
	f := newTestFabric(t, 2)
	if f.Nodes() != 3 || f.Devices() != 2 {
		t.Fatalf("Nodes = %d, Devices = %d", f.Nodes(), f.Devices())
	}
	for _, n := range []NodeID{0, 1, 2} {
		if !f.ValidNode(n) {
			t.Errorf("node %d should be valid", n)
		}
	}
	for _, n := range []NodeID{-1, 3} {
		if f.ValidNode(n) {
			t.Errorf("node %d should be invalid", n)
		}
	}
}

func TestNewFabricRequiresDevice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero devices")
		}
	}()
	NewFabric(simclock.Default(), 0)
}

func TestRDMACostOrdering(t *testing.T) {
	f := newTestFabric(t, 2)
	n := int64(64 * simclock.MiB)
	hostDev := f.RDMACost(0, 1, n)
	devDev := f.RDMACost(1, 2, n)
	if devDev <= hostDev {
		t.Errorf("peer-to-peer RDMA (%v) must be slower than host-device (%v)", devDev, hostDev)
	}
	localHost := f.RDMACost(0, 0, n)
	localDev := f.RDMACost(1, 1, n)
	if localHost >= localDev {
		t.Errorf("host memcpy (%v) must beat KNC memcpy (%v)", localHost, localDev)
	}
}

func TestVirtioSlowerThanRDMA(t *testing.T) {
	f := newTestFabric(t, 1)
	n := int64(256 * simclock.MiB)
	if f.VirtioCost(1, 0, n) <= f.RDMACost(1, 0, n) {
		t.Error("virtio path must be slower than RDMA")
	}
}

func TestTrafficAccounting(t *testing.T) {
	f := newTestFabric(t, 2)
	f.RDMACost(1, 0, 1000)
	f.RDMACost(1, 0, 500)
	f.MsgCost(0, 1, 64)
	f.VirtioCost(2, 0, 10)
	if got := f.Traffic(1, 0); got != 1500 {
		t.Errorf("Traffic(1,0) = %d, want 1500", got)
	}
	if got := f.Traffic(0, 1); got != 64 {
		t.Errorf("Traffic(0,1) = %d, want 64", got)
	}
	if got := f.Traffic(2, 0); got != 10 {
		t.Errorf("Traffic(2,0) = %d, want 10", got)
	}
	if got := f.Traffic(2, 1); got != 0 {
		t.Errorf("Traffic(2,1) = %d, want 0", got)
	}
}

func TestInvalidNodePanics(t *testing.T) {
	f := newTestFabric(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid node")
		}
	}()
	f.RDMACost(0, 5, 10)
}
