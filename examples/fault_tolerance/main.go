// Fault tolerance: the classic checkpoint/restart loop the paper's
// introduction motivates — a long-running offload application checkpoints
// periodically; random failures kill it; a supervisor restarts it from the
// latest snapshot. The run always completes with the correct result, and
// only the work since the last checkpoint is ever repeated.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"snapify"
	"snapify/internal/core"
	"snapify/internal/workloads"
)

func main() {
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 1})
	check(err)
	defer srv.Stop()
	plat := srv.Platform

	spec, _ := workloads.ByCode("KM")
	spec.Calls = 40
	const checkpointEvery = 8

	rng := rand.New(rand.NewSource(7))

	// Reference result from an undisturbed run.
	ref, err := workloads.Launch(plat, spec, 1)
	check(err)
	want, err := ref.Run()
	check(err)
	ref.Close()

	fmt.Printf("K-Means, %d offload calls, checkpoint every %d, random failures injected\n\n",
		spec.Calls, checkpointEvery)

	in, err := workloads.Launch(plat, spec, 1)
	check(err)
	app := core.NewApp(plat, in.CP)
	lastCkpt := ""
	failures, checkpoints := 0, 0

	for !in.Done() {
		// Run one checkpoint interval, with a chance of dying mid-way.
		target := in.Progress() + checkpointEvery
		if target > spec.Calls {
			target = spec.Calls
		}
		for in.Progress() < target {
			if lastCkpt != "" && rng.Intn(12) == 0 {
				// Crash: host process dies, daemon reaps the offload side.
				failures++
				lost := in.Progress()
				in.Close()
				app2, host2, _, err := core.RestartApp(plat, lastCkpt)
				check(err)
				in, err = workloads.Attach(plat, spec, host2, app2.Proc())
				check(err)
				app = app2
				fmt.Printf("  CRASH at call %d -> restarted from %s at call %d (%d calls repeated)\n",
					lost, lastCkpt, in.Progress(), lost-in.Progress())
				continue
			}
			_, err := in.RunCalls(1)
			check(err)
		}
		if in.Done() {
			break
		}
		dir := fmt.Sprintf("/ft/ckpt_%d", in.Progress())
		rep, err := app.Checkpoint(dir)
		check(err)
		lastCkpt = dir
		checkpoints++
		fmt.Printf("checkpoint at call %d (%.2fs virtual, %.0fMiB)\n",
			in.Progress(), rep.Total().Seconds(),
			float64(rep.HostSnapshotBytes+rep.Offload.SnapshotBytes+rep.Offload.LocalStoreBytes)/(1<<20))
	}

	got := in.Checksum()
	in.Close()
	fmt.Printf("\nrun complete: %d checkpoints, %d failures survived\n", checkpoints, failures)
	if got == want {
		fmt.Printf("final checksum %d matches the failure-free run — recovery was exact\n", got)
	} else {
		fmt.Printf("MISMATCH: %d != %d\n", got, want)
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fault_tolerance:", err)
		os.Exit(1)
	}
}
