package workloads

import (
	"fmt"
	"testing"

	"snapify/internal/core"
)

// TestEverySpecSurvivesEveryDisturbance runs each benchmark of the suite
// through each disturbance kind — checkpoint+restart-in-place, swap
// round trip, migration — at a mid-run point and requires the final
// checksum to match the undisturbed run. This is the workload-level
// version of the paper's transparency claim.
func TestEverySpecSurvivesEveryDisturbance(t *testing.T) {
	for _, spec := range OpenMP {
		spec := scaled(spec, 8)
		t.Run(spec.Code, func(t *testing.T) {
			// Reference.
			plat := newPlat(t, 2)
			ref, err := Launch(plat, spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}
			ref.Close()

			for _, kind := range []string{"checkpoint", "swap", "migrate"} {
				in, err := Launch(plat, spec, 1)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := in.RunCalls(3); err != nil {
					t.Fatal(err)
				}
				dir := fmt.Sprintf("/dist/%s/%s", spec.Code, kind)
				switch kind {
				case "checkpoint":
					s := core.NewSnapshot(dir, in.CP)
					mustOK(t, core.Pause(s))
					mustOK(t, s.Capture(core.CaptureOptions{}))
					mustOK(t, core.Wait(s))
					mustOK(t, core.Resume(s))
				case "swap":
					s, err := core.Swapout(dir, in.CP, core.CaptureOptions{})
					mustOK(t, err)
					_, err = core.Swapin(s, 1, core.RestoreOptions{})
					mustOK(t, err)
				case "migrate":
					target := in.CP.DeviceNode()%2 + 1
					_, _, err := core.Migrate(in.CP, core.MigrateOptions{DeviceTo: target, Path: dir})
					mustOK(t, err)
				}
				got, err := in.Run()
				if err != nil {
					t.Fatalf("%s after %s: %v", spec.Code, kind, err)
				}
				if got != want {
					t.Errorf("%s after %s: checksum %d, want %d", spec.Code, kind, got, want)
				}
				in.Close()
			}
		})
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
