// Package simnet models the PCIe fabric of a Xeon Phi server: one host
// (SCIF node 0) and one or more coprocessors (SCIF nodes 1..N) connected by
// PCIe gen2 x16 links. It provides virtual-time costs for message and DMA
// traffic between nodes and keeps per-link byte counters so tests and the
// benchmark harness can verify where data actually moved.
//
// Contention is not modeled: each transfer is charged its isolated cost.
// The paper's experiments take one snapshot at a time, so link contention
// never determines any reported number.
package simnet

import (
	"fmt"
	"sync/atomic"

	"snapify/internal/simclock"
)

// NodeID identifies a SCIF node. Node 0 is the host; nodes 1..N are the
// Xeon Phi coprocessors, matching SCIF's numbering in MPSS.
type NodeID int

// HostNode is the SCIF node ID of the host processor.
const HostNode NodeID = 0

// IsHost reports whether n is the host node.
func (n NodeID) IsHost() bool { return n == HostNode }

func (n NodeID) String() string {
	if n.IsHost() {
		return "host"
	}
	return fmt.Sprintf("mic%d", int(n)-1)
}

// Fabric is the PCIe interconnect of one Xeon Phi server.
type Fabric struct {
	model   *simclock.Model
	devices int

	// traffic[i][j] counts bytes moved from node i to node j.
	traffic [][]atomic.Int64
}

// NewFabric returns a fabric with the given number of coprocessor devices.
func NewFabric(model *simclock.Model, devices int) *Fabric {
	if devices < 1 {
		panic("simnet: a Xeon Phi server needs at least one coprocessor") //nolint:paniclib // configuration bug: fabric topology is fixed at setup
	}
	n := devices + 1
	tr := make([][]atomic.Int64, n)
	for i := range tr {
		tr[i] = make([]atomic.Int64, n)
	}
	return &Fabric{model: model, devices: devices, traffic: tr}
}

// Model returns the fabric's cost model.
func (f *Fabric) Model() *simclock.Model { return f.model }

// Devices returns the number of coprocessors.
func (f *Fabric) Devices() int { return f.devices }

// Nodes returns the total number of SCIF nodes (host + devices).
func (f *Fabric) Nodes() int { return f.devices + 1 }

// ValidNode reports whether n names a node of this fabric.
func (f *Fabric) ValidNode(n NodeID) bool { return n >= 0 && int(n) < f.Nodes() }

func (f *Fabric) checkPair(from, to NodeID) {
	if !f.ValidNode(from) || !f.ValidNode(to) {
		panic(fmt.Sprintf("simnet: invalid node pair %d -> %d (fabric has %d nodes)", from, to, f.Nodes())) //nolint:paniclib // caller bug: node ids are minted by this fabric
	}
}

// account records bytes on the from->to link.
func (f *Fabric) account(from, to NodeID, bytes int64) {
	f.traffic[from][to].Add(bytes)
}

// Traffic returns the bytes moved from one node to another so far.
func (f *Fabric) Traffic(from, to NodeID) int64 {
	f.checkPair(from, to)
	return f.traffic[from][to].Load()
}

// RDMACost returns the virtual cost of one RDMA transfer of the given size
// between two nodes and accounts the traffic. Device-to-device transfers
// cross the host root complex, halving effective bandwidth (KNC peer-to-peer
// behaves this way); same-node transfers are local memcpys.
func (f *Fabric) RDMACost(from, to NodeID, bytes int64) simclock.Duration {
	f.checkPair(from, to)
	f.account(from, to, bytes)
	m := f.model
	switch {
	case from == to:
		if from.IsHost() {
			return m.HostMemcpy(bytes)
		}
		return m.PhiMemcpy(bytes)
	case !from.IsHost() && !to.IsHost():
		// Peer-to-peer: staged through the root complex.
		return m.RDMASetup + 2*m.RDMA(bytes) - m.RDMASetup
	default:
		return m.RDMA(bytes)
	}
}

// MsgCost returns the virtual cost of a message-path (scif_send) transfer
// between two nodes and accounts the traffic.
func (f *Fabric) MsgCost(from, to NodeID, bytes int64) simclock.Duration {
	f.checkPair(from, to)
	f.account(from, to, bytes)
	if from == to {
		// Local loopback: one memcpy plus scheduling.
		m := f.model
		if from.IsHost() {
			return m.HostMemcpy(bytes) + m.UnixSocketLatency
		}
		return m.PhiMemcpy(bytes) + m.UnixSocketLatency
	}
	if !from.IsHost() && !to.IsHost() {
		return 2 * f.model.SCIFMsg(bytes)
	}
	return f.model.SCIFMsg(bytes)
}

// VirtioCost returns the virtual cost of moving bytes over the TCP/IP
// virtio interface (the path NFS and scp traffic takes) and accounts it.
func (f *Fabric) VirtioCost(from, to NodeID, bytes int64) simclock.Duration {
	f.checkPair(from, to)
	f.account(from, to, bytes)
	hops := 1
	if !from.IsHost() && !to.IsHost() && from != to {
		hops = 2
	}
	return simclock.Duration(hops) * simclock.Rate(f.model.NFSBandwidth)(bytes)
}
