package lint

import (
	"go/ast"
)

// GoroutineLeak reports `go func` literals with no visible shutdown
// signal. The pause protocol's guarantee is that a drained process has
// *nothing* in flight (§4.1); a goroutine that nothing can stop — no done
// channel, no WaitGroup the teardown joins, no context — outlives the
// process it belongs to and invalidates that guarantee (and, in the
// simulator, skews the thread-count quiesce cost). The check is
// syntactic and local by design: referencing any channel, WaitGroup, or
// context inside the literal (or passing one in as an argument) counts
// as a signal.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "every go func literal carries a shutdown signal: a channel, WaitGroup, or context in scope",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		stmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true // `go named(...)`: the callee owns its lifecycle
		}
		if hasShutdownSignal(p, lit, stmt.Call.Args) {
			return true
		}
		p.Reportf(stmt.Pos(), "go func literal has no shutdown signal (no done channel, WaitGroup, or context in scope)")
		return true
	})
}

// hasShutdownSignal scans the literal's body and its call arguments for
// anything that could stop or join the goroutine.
func hasShutdownSignal(p *Pass, lit *ast.FuncLit, args []ast.Expr) bool {
	info := p.Pkg.Info
	found := false
	consider := func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			// A receive anywhere in the body is a signal.
			if e.Op.String() == "<-" {
				found = true
			}
		case ast.Expr:
			if tv, ok := info.Types[e]; ok {
				t := tv.Type
				if isChanType(t) || namedTypeIs(t, "context", "Context") || namedTypeIs(t, "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	}
	ast.Inspect(lit.Body, consider)
	for _, a := range args {
		ast.Inspect(a, consider)
	}
	return found
}
