// Package mpi implements the minimal message-passing runtime the paper's
// distributed experiments need (Section 7, "Checkpoint and restart for
// MPI"): a cluster of Xeon Phi servers, one MPI rank per node, ordered
// point-to-point messages, barrier and allreduce, and BLCR-integrated
// coordinated checkpoint/restart — the LAM/MPI style system-initiated
// checkpointing the paper piggybacks on, with each rank's offload process
// captured by Snapify through the registered callback.
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// Cluster is a set of Xeon Phi servers connected by an interconnect.
type Cluster struct {
	Nodes []*platform.Platform
	model *simclock.Model
}

// NewCluster builds n identical servers and starts their COI daemons.
func NewCluster(n int, cfg platform.Config) (*Cluster, error) {
	if n < 1 {
		return nil, errors.New("mpi: cluster needs at least one node")
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		plat, err := platform.New(cfg)
		if err != nil {
			c.Stop()
			return nil, err
		}
		if err := coi.StartDaemons(plat); err != nil {
			c.Stop()
			return nil, err
		}
		c.Nodes = append(c.Nodes, plat)
	}
	c.model = c.Nodes[0].Model()
	return c, nil
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for _, plat := range c.Nodes {
		coi.StopDaemons(plat)
	}
}

// Model returns the cluster's cost model.
func (c *Cluster) Model() *simclock.Model { return c.model }

// message is one in-flight MPI message.
type message struct {
	tag  int
	data []byte
}

// World is one MPI job: size ranks, one per cluster node.
type World struct {
	cluster *Cluster
	ranks   []*Rank

	mu      sync.Mutex
	barrier *barrierState
	reduce  *reduceState
}

type barrierState struct {
	arrived int
	maxTime simclock.Duration
	release chan struct{}
}

type reduceState struct {
	arrived int
	sum     uint64
	release chan struct{}
}

// Rank is one MPI process: a host process (with its offload process) on
// one cluster node.
type Rank struct {
	ID    int
	Plat  *platform.Platform
	Host  *proc.Process
	TL    *simclock.Timeline
	world *World

	mu     sync.Mutex
	inbox  map[int][]message // keyed by source rank
	cond   *sync.Cond
	closed bool
	app    *core.App // the rank's CR attachment
}

// NewWorld launches size ranks across the cluster's nodes (rank i on node
// i; size must not exceed the node count, matching the paper's one rank
// per node).
func NewWorld(c *Cluster, size int) (*World, error) {
	if size < 1 || size > len(c.Nodes) {
		return nil, fmt.Errorf("mpi: world size %d does not fit %d nodes", size, len(c.Nodes))
	}
	w := &World{cluster: c}
	for i := 0; i < size; i++ {
		plat := c.Nodes[i]
		r := &Rank{
			ID:    i,
			Plat:  plat,
			Host:  plat.Procs.Spawn(fmt.Sprintf("mpi_rank_%d", i), simnet.HostNode, plat.Host().Mem),
			TL:    simclock.NewTimeline(),
			world: w,
			inbox: make(map[int][]message),
		}
		r.cond = sync.NewCond(&r.mu)
		w.ranks = append(w.ranks, r)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// World returns the rank's world.
func (r *Rank) World() *World { return r.world }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// netCost is the interconnect cost of moving n bytes between two nodes.
func (w *World) netCost(n int64) simclock.Duration {
	m := w.cluster.model
	return m.ClusterNetLatency + simclock.Rate(m.ClusterNetBandwidth)(n)
}

// Send delivers data to rank `to` with the given tag (ordered per sender).
func (r *Rank) Send(to, tag int, data []byte) error {
	if to < 0 || to >= len(r.world.ranks) {
		return fmt.Errorf("mpi: rank %d out of range", to)
	}
	dst := r.world.ranks[to]
	cp := make([]byte, len(data))
	copy(cp, data)
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return fmt.Errorf("mpi: rank %d is down", to)
	}
	dst.inbox[r.ID] = append(dst.inbox[r.ID], message{tag: tag, data: cp})
	dst.cond.Broadcast()
	dst.mu.Unlock()
	r.TL.Advance(r.world.netCost(int64(len(data))))
	return nil
}

// Recv blocks for the next message from rank `from` with the given tag.
func (r *Rank) Recv(from, tag int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		q := r.inbox[from]
		for i, m := range q {
			if m.tag == tag {
				r.inbox[from] = append(q[:i:i], q[i+1:]...)
				r.TL.Advance(r.world.netCost(int64(len(m.data))))
				return m.data, nil
			}
		}
		if r.closed {
			return nil, errors.New("mpi: rank closed")
		}
		r.cond.Wait()
	}
}

// PendingBytes returns the bytes queued at this rank — the MPI half of the
// drain invariant at checkpoint time.
func (r *Rank) PendingBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, q := range r.inbox {
		for _, m := range q {
			n += int64(len(m.data))
		}
	}
	return n
}

// Barrier blocks until every rank arrives; timelines align to the latest
// arrival plus one round-trip.
func (r *Rank) Barrier() {
	w := r.world
	w.mu.Lock()
	if w.barrier == nil {
		w.barrier = &barrierState{release: make(chan struct{})}
	}
	b := w.barrier
	b.arrived++
	if t := r.TL.Now(); t > b.maxTime {
		b.maxTime = t
	}
	if b.arrived == len(w.ranks) {
		w.barrier = nil
		close(b.release)
		w.mu.Unlock()
	} else {
		w.mu.Unlock()
		<-b.release
	}
	r.TL.AdvanceTo(b.maxTime + 2*w.cluster.model.ClusterNetLatency)
}

// AllreduceSum returns the sum of each rank's contribution on every rank.
func (r *Rank) AllreduceSum(v uint64) uint64 {
	w := r.world
	w.mu.Lock()
	if w.reduce == nil {
		w.reduce = &reduceState{release: make(chan struct{})}
	}
	red := w.reduce
	red.sum += v
	red.arrived++
	if red.arrived == len(w.ranks) {
		w.reduce = nil
		close(red.release)
		w.mu.Unlock()
	} else {
		w.mu.Unlock()
		<-red.release
	}
	r.TL.Advance(simclock.Duration(len(w.ranks)) * w.cluster.model.ClusterNetLatency)
	return red.sum
}

// Run executes fn concurrently on every rank and waits for all of them.
func (w *World) Run(fn func(r *Rank) error) error {
	errs := make([]error, len(w.ranks))
	var wg sync.WaitGroup
	for i, r := range w.ranks {
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			errs[i] = fn(r)
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close tears down every rank's host process (and, via the COI daemons,
// their offload processes).
func (w *World) Close() {
	for _, r := range w.ranks {
		r.mu.Lock()
		r.closed = true
		r.cond.Broadcast()
		r.mu.Unlock()
		r.Host.Terminate()
	}
}
