// Package errcheck is a golden fixture for the errcheck analyzer: every
// line marked with a want comment must produce exactly one finding with
// the quoted substring, and a line ending in a bare nolint directive
// must produce the amended no-justification finding. See golden_test.go.
package errcheck

import "errors"

// T is a module-defined type so method calls are in scope for the rule.
type T struct{}

// Close returns an error, like every teardown in the snapshot protocol.
func (T) Close() error { return errors.New("boom") }

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func bareCall(t T) {
	work()    // want "error result of errcheck.work is discarded by the bare call"
	t.Close() // want "error result of T.Close is discarded by the bare call"
}

func goAndDefer(t T) {
	go work()       // want "error result of errcheck.work is discarded by the go statement"
	defer t.Close() // want "error result of T.Close is discarded by the deferred call"
}

func blankAssign() {
	_ = work()     // want "error result of errcheck.work is assigned to _"
	n, _ := pair() // want "error result of errcheck.pair is assigned to _"
	_ = n
}

func checked(t T) error {
	if err := work(); err != nil {
		return err
	}
	n, err := pair()
	_ = n
	if err != nil {
		return err
	}
	return t.Close()
}

func stdlibOutOfScope() {
	errors.Join(nil) // stdlib callee: the rule is scoped to module functions
}

func suppressed() {
	work() //nolint:errcheck // golden fixture: a justified directive suppresses the finding
}

// A directive with no justification must NOT suppress: the finding is
// reported with a message explaining what a directive needs.
func bareDirective() {
	work() //nolint:errcheck
}

func allowme() error { return errors.New("boom") }

// Allowlisted is covered by testdata/allow.txt in TestAllowlistGolden;
// the plain golden test still expects its finding.
func Allowlisted() {
	allowme() // want "error result of errcheck.allowme is discarded by the bare call"
}
