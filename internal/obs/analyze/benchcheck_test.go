package analyze

import (
	"strings"
	"testing"
)

const baseDoc = `{
  "benchmark": "parallel-capture",
  "image_bytes": 8589934592,
  "rows": [
    {"streams": 1, "capture_ns": 4000000, "wall_ns": 123456},
    {"streams": 4, "capture_ns": 1005000, "wall_ns": 99999}
  ],
  "serial_seconds": 0.004,
  "byte_identical": true
}`

// TestCompareBenchIdentical: a byte-identical fresh run passes clean.
func TestCompareBenchIdentical(t *testing.T) {
	regs, err := CompareBenchJSON([]byte(baseDoc), []byte(baseDoc), DefaultCheckOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("identical docs flagged: %v", regs)
	}
}

// TestCompareBenchPerturbed is the acceptance-criteria property: a
// perturbed metric beyond tolerance is reported (the snapbench -check
// gate exits nonzero on any report).
func TestCompareBenchPerturbed(t *testing.T) {
	fresh := strings.Replace(baseDoc, `"capture_ns": 1005000`, `"capture_ns": 1200000`, 1)
	regs, err := CompareBenchJSON([]byte(baseDoc), []byte(fresh), DefaultCheckOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions %v, want exactly the perturbed field", regs)
	}
	if !strings.Contains(regs[0].Path, "rows[1].capture_ns") {
		t.Errorf("regression path %q, want rows[1].capture_ns", regs[0].Path)
	}
	if !strings.Contains(RenderRegressions("BENCH_capture.json", regs), "1 regression") {
		t.Error("render drifted")
	}
}

// TestCompareBenchSkipsWallClock: wall-clock fields are machine-
// dependent and must never trip the gate.
func TestCompareBenchSkipsWallClock(t *testing.T) {
	fresh := strings.Replace(baseDoc, `"wall_ns": 123456`, `"wall_ns": 987654321`, 1)
	regs, err := CompareBenchJSON([]byte(baseDoc), []byte(fresh), DefaultCheckOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("wall-clock drift flagged: %v", regs)
	}
}

// TestCompareBenchWithinTolerance: sub-tolerance numeric drift passes.
func TestCompareBenchWithinTolerance(t *testing.T) {
	fresh := strings.Replace(baseDoc, `"capture_ns": 1005000`, `"capture_ns": 1006000`, 1)
	regs, err := CompareBenchJSON([]byte(baseDoc), []byte(fresh), DefaultCheckOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("0.1%% drift flagged at 1%% tolerance: %v", regs)
	}
}

// TestCompareBenchStructuralDrift: missing fields, new fields, array
// length changes, and type flips are all regressions.
func TestCompareBenchStructuralDrift(t *testing.T) {
	cases := []struct {
		name, fresh, wantPath string
	}{
		{"missing field",
			strings.Replace(baseDoc, `"serial_seconds": 0.004,`, ``, 1),
			"serial_seconds"},
		{"new field",
			strings.Replace(baseDoc, `"byte_identical": true`, `"byte_identical": true, "extra": 1`, 1),
			"extra"},
		{"array shrank",
			strings.Replace(baseDoc, ",\n    {\"streams\": 4, \"capture_ns\": 1005000, \"wall_ns\": 99999}", ``, 1),
			"rows"},
		{"bool flip",
			strings.Replace(baseDoc, `"byte_identical": true`, `"byte_identical": false`, 1),
			"byte_identical"},
		{"string vs number",
			strings.Replace(baseDoc, `"benchmark": "parallel-capture"`, `"benchmark": 7`, 1),
			"benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, err := CompareBenchJSON([]byte(baseDoc), []byte(tc.fresh), DefaultCheckOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(regs) == 0 {
				t.Fatalf("structural drift not flagged")
			}
			found := false
			for _, r := range regs {
				if strings.Contains(r.Path, tc.wantPath) {
					found = true
				}
			}
			if !found {
				t.Errorf("regressions %v do not mention %q", regs, tc.wantPath)
			}
		})
	}
}

// TestCompareBenchFieldTol: per-field overrides beat the default.
func TestCompareBenchFieldTol(t *testing.T) {
	fresh := strings.Replace(baseDoc, `"capture_ns": 1005000`, `"capture_ns": 1100000`, 1)
	opts := DefaultCheckOptions()
	opts.FieldTol = map[string]float64{"capture_ns": 0.2}
	regs, err := CompareBenchJSON([]byte(baseDoc), []byte(fresh), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("9%% drift flagged despite 20%% field tolerance: %v", regs)
	}
}
