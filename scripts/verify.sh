#!/bin/sh
# verify.sh — the one-command tier-1 gate (ROADMAP.md "Tier-1 verify").
#
# Runs, in order: formatting, go vet, the build, the Snapify-specific
# static analyzers (cmd/snapifylint — exits non-zero on any unjustified
# finding), and the full test suite under the race detector. Run it from
# anywhere inside the module; it cds to the module root first.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l $(git ls-files '*.go'))
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> snapifylint -stats ./internal/... ./cmd/..."
# All twelve analyzers run here, including the interprocedural CFG-based
# ones (maporder, spanleak, lockorder, closeleak); -stats prints the
# per-analyzer finding-count and wall-clock summary so gate cost and
# noise stay visible in CI logs.
go run ./cmd/snapifylint -stats ./internal/... ./cmd/...

echo "==> snapifylint -unused-allowlist (no stale suppressions)"
go run ./cmd/snapifylint -unused-allowlist ./internal/... ./cmd/...

echo "==> go test -race ./..."
go test -race ./...

echo "==> coverage floors (internal/snapstore, internal/core, internal/sched, internal/fleetd)"
# Per-package statement-coverage floors for the two packages that hold
# the durability-critical logic (the dedup store and the checkpoint /
# restart engine). The floors sit a few points under the measured
# coverage at the time each floor was set, so they trip on real test
# erosion, not on formatting-level churn. Raise a floor when coverage
# grows; never lower one without a written justification in the PR.
cover_fail=0
printf '%-24s %10s %8s\n' "package" "coverage" "floor"
for spec in "./internal/snapstore/:74.0" "./internal/core/:81.0" "./internal/sched/:62.0" "./internal/fleetd/:78.0"; do
    pkg=${spec%:*}
    floor=${spec#*:}
    pct=$(go test -cover "$pkg" | awk '{for (i=1;i<=NF;i++) if ($i ~ /%$/) {gsub(/%/,"",$i); print $i}}')
    if [ -z "$pct" ]; then
        echo "coverage: no percentage reported for $pkg" >&2
        cover_fail=1
        continue
    fi
    printf '%-24s %9s%% %7s%%\n' "$pkg" "$pct" "$floor"
    if [ "$(awk -v p="$pct" -v f="$floor" 'BEGIN{print (p < f) ? 1 : 0}')" = 1 ]; then
        echo "coverage: $pkg at $pct% is below the $floor% floor" >&2
        cover_fail=1
    fi
done
[ "$cover_fail" = 0 ]

echo "==> fuzz smoke (5s per target, committed seed corpora)"
# Short native-Go fuzz runs over the two external parsing surfaces: the
# snapstore manifest decoder (bytes off the VFS / off the wire from a
# federation peer) and the Chrome-trace parser (CI artifacts, user
# exports). The committed corpora under testdata/fuzz/ replay first;
# 5s of mutation on top catches regressions in input hardening without
# turning the gate into a fuzzing campaign. Crashers minimize into
# testdata/fuzz/ and fail the gate until fixed.
go test -run '^$' -fuzz '^FuzzDecodeManifest$' -fuzztime 5s ./internal/snapstore/
go test -run '^$' -fuzz '^FuzzParseChromeTrace$' -fuzztime 5s ./internal/obs/analyze/

echo "==> chaos tier (fault-injection sweeps + seed replay, -count=2)"
# The chaos tier re-runs the deterministic fault-injection sweeps twice
# under the race detector: every single-fault case must end atomic (no
# torn snapshot, no orphan .partial) or retryable, and the seeded runs
# (seeds pinned inside the tests: 1, 7, 0xC0FFEE) must replay to
# byte-identical Chrome traces. -count=2 makes cross-run nondeterminism
# a failure, not a flake. snapstore carries the federation chaos cases
# (TestChaosFederation*), sched the fleet-level kill-during-replication
# case, and fleetd the control-plane cases (TestChaosFleet*: host kill
# mid-evacuation-wave, capture crash mid-preemption, seed replay).
go test -race -count=2 -run 'TestChaos|TestSeedReplay' ./internal/core/ ./internal/snapstore/ ./internal/sched/ ./internal/fleetd/

echo "==> snapbench -parallel -smoke -trace (parallel capture + trace smoke)"
# The -trace flag makes snapbench export the sweep's Chrome trace and
# schema-check it (obs.ValidateChromeTrace) before writing; a malformed
# trace fails the gate.
trace_out=$(mktemp /tmp/snapify_trace_smoke.XXXXXX.json)
go run ./cmd/snapbench -parallel -smoke -trace "$trace_out"

echo "==> snapifyctl analyze critical-path (smoke trace)"
# The critical-path analyzer must decompose the smoke trace into a chain
# whose summed segments exactly tile the end-to-end window (the analyzer
# errors out otherwise — integer-equality, no tolerance).
go run ./cmd/snapifyctl analyze critical-path "$trace_out"
rm -f "$trace_out"

echo "==> snapbench -store -smoke -trace (dedup store + trace smoke)"
# The store smoke runs the swap-cycle dedup comparison on a small image;
# its shape check pins the >= 3x shipped-byte reduction, the
# byte-identical store round-trip, the negotiation spans' capture-scope
# correlation, and GC back to zero chunks.
store_trace=$(mktemp /tmp/snapify_store_smoke.XXXXXX.json)
go run ./cmd/snapbench -store -smoke -trace "$store_trace"
rm -f "$store_trace"

echo "==> snapbench -migrate -smoke -trace (live migration + trace smoke)"
# The migrate smoke runs the stop-the-world vs live pre-copy sweep on
# small images; its shape check pins byte-identical restores, bounded
# live downtime against a stop-the-world that grows with image size,
# pre-copy convergence within the round budget, the downtime/round span
# accounting, and a store drained back to zero chunks after release.
migrate_trace=$(mktemp /tmp/snapify_migrate_smoke.XXXXXX.json)
go run ./cmd/snapbench -migrate -smoke -trace "$migrate_trace"
rm -f "$migrate_trace"

echo "==> snapbench -fleet -smoke -trace (fleet control plane + trace smoke)"
# The fleet smoke runs the seeded bursty trace against the model backend
# at two oversubscription ratios; its shape check pins job conservation,
# everything-admitted-completes, the evacuation deadline, swap-backed
# oversubscription lifting utilization over the 100% baseline, and the
# event heap staying O(log n). The -trace flag schema-checks the
# control-plane Chrome trace (obs.ValidateChromeTrace) before writing.
fleet_trace=$(mktemp /tmp/snapify_fleet_smoke.XXXXXX.json)
go run ./cmd/snapbench -fleet -smoke -trace "$fleet_trace"
rm -f "$fleet_trace"

echo "==> snapbench -check baselines/ (benchmark regression gate)"
# Re-runs every committed smoke-scale baseline at its recorded parameters
# and fails on any drifted non-wall field: the virtual clock makes every
# benchmark number exactly reproducible, so a drift means the data path
# changed and the baselines (and their analysis) must be regenerated
# deliberately — scripts/bench.sh -smoke refreshes them.
go run ./cmd/snapbench -check baselines/

echo "verify: all gates passed"
