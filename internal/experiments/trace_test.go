package experiments

import (
	"encoding/json"
	"sort"
	"testing"

	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// TestParallelCaptureTraceMatchesReport is the observability acceptance
// test: the sweep's exported Chrome trace must be valid, and the
// capture-phase span durations in it must equal the Report-derived
// benchmark rows exactly — same integers, no rounding. The trace and the
// JSON figures are two renderings of the same spans.
func TestParallelCaptureTraceMatchesReport(t *testing.T) {
	res, err := ParallelCapture(128*simclock.MiB, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	raw := res.TraceJSON()
	if err := obs.ValidateChromeTrace(raw); err != nil {
		t.Fatalf("sweep trace does not validate: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	// Integer args survive the JSON round trip exactly: they are written
	// as integer literals and 64-bit floats hold every virtual duration
	// the sweep produces.
	i64 := func(args map[string]any, key string) int64 {
		v, _ := args[key].(float64)
		return int64(v)
	}

	// The host lane's snapify_capture spans, in virtual-time order, are
	// the sweep's captures in row order; each carries the scope its
	// capture_stream worker spans were emitted under.
	type capture struct {
		ts    float64
		ns    int64
		scope int64
	}
	var captures []capture
	streamNs := make(map[int64][]int64) // scope -> worker durations
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "snapify_capture":
			captures = append(captures, capture{ev.Ts, i64(ev.Args, "dur_ns"), i64(ev.Args, "scope")})
		case "capture_stream":
			scope := i64(ev.Args, "scope")
			streamNs[scope] = append(streamNs[scope], i64(ev.Args, "dur_ns"))
		}
	}
	sort.Slice(captures, func(i, j int) bool { return captures[i].ts < captures[j].ts })
	if len(captures) != len(res.Rows) {
		t.Fatalf("trace has %d snapify_capture spans, sweep has %d rows", len(captures), len(res.Rows))
	}

	for i, row := range res.Rows {
		c := captures[i]
		if c.ns != row.CaptureNs {
			t.Errorf("row %d (streams=%d): trace capture span %d ns, benchmark row %d ns",
				i, row.Streams, c.ns, row.CaptureNs)
		}
		workers := append([]int64(nil), streamNs[c.scope]...)
		if len(workers) != row.Streams {
			t.Fatalf("row %d (streams=%d): trace scope %d has %d capture_stream spans",
				i, row.Streams, c.scope, len(workers))
		}
		want := append([]int64(nil), row.StreamNs...)
		if row.Streams == 1 {
			want = []int64{row.CaptureNs} // serial rows omit stream_ns
		}
		sort.Slice(workers, func(a, b int) bool { return workers[a] < workers[b] })
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for j := range want {
			if workers[j] != want[j] {
				t.Errorf("row %d (streams=%d): worker %d: trace %d ns, benchmark %d ns",
					i, row.Streams, j, workers[j], want[j])
			}
		}
		var max int64
		for _, w := range workers {
			if w > max {
				max = w
			}
		}
		if max != row.CaptureNs {
			t.Errorf("row %d: slowest worker %d ns != capture %d ns", i, max, row.CaptureNs)
		}
	}
}
