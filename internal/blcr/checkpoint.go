package blcr

import (
	"fmt"

	"snapify/internal/blob"
	"snapify/internal/obs"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/stream"
)

// PageChunk is the granularity at which region pages are written to the
// sink. BLCR's vmadump writes VMAs in large extents; 4 MiB matches the
// Snapify-IO staging buffer (Section 6).
const PageChunk = 4 * simclock.MiB

// Stats describes one checkpoint or restart.
type Stats struct {
	// Bytes is the context-file size.
	Bytes int64
	// MetaWrites counts the small metadata records (the pre-page-loop
	// writes that dominate plain-NFS checkpoint cost).
	MetaWrites int
	// Regions and Threads count what was serialized.
	Regions int
	Threads int
	// Duration is the end-to-end virtual time of the operation, including
	// quiesce, serialization, and transport. Per-stream timings of the
	// parallel paths are not carried here: workers emit spans on the
	// tracer installed by WithSpans, and consumers read them back by scope
	// (internal/obs) — the trace is the source of truth.
	Duration simclock.Duration
}

// Checkpointer captures and restores process snapshots.
type Checkpointer struct {
	model *simclock.Model
	sp    *spanOpts
	retry RetryPolicy
}

// New returns a checkpointer using the given cost model.
func New(model *simclock.Model) *Checkpointer {
	return &Checkpointer{model: model}
}

// spanOpts wires one operation to the observability tracer.
type spanOpts struct {
	tracer *obs.Tracer
	scope  uint64
	start  simclock.Duration // virtual time at which the operation begins
}

// WithSpans returns a shallow copy of c whose checkpoint/restart workers
// emit per-stream spans under scope on tr, starting at the virtual time
// start. A zero scope (or nil tracer) records nothing, so callers without
// observability pass through unchanged.
func (c *Checkpointer) WithSpans(tr *obs.Tracer, scope uint64, start simclock.Duration) *Checkpointer {
	cp := *c
	cp.sp = &spanOpts{tracer: tr, scope: scope, start: start}
	return &cp
}

// emitStreamSpans records one span per worker of a checkpoint or restart,
// each on its own track ("<proc>/stream N" under the process's node), all
// starting at the operation's begin time — exactly how the real workers
// overlap. No-op unless WithSpans installed a tracer and scope.
func (c *Checkpointer) emitStreamSpans(p *proc.Process, name string, at simclock.Duration, durs []simclock.Duration, bytes []int64) {
	if c.sp == nil || c.sp.scope == 0 {
		return
	}
	for i, d := range durs {
		tk := c.sp.tracer.Track(p.Node().String(), fmt.Sprintf("%s/stream %d", p.Name(), i))
		tk.Emit(c.sp.scope, name, at, d, map[string]int64{"bytes": bytes[i], "stream": int64(i)})
	}
}

// walkStage returns the serialization cost of n bytes on p's node.
func (c *Checkpointer) walkStage(onHost bool, n int64) simclock.Duration {
	if onHost {
		return c.model.HostPageWalk(n)
	}
	return c.model.PhiPageWalk(n)
}

// Checkpoint freezes p at a safe point, serializes it to sink, and resumes
// it. The returned stats include the virtual end-to-end latency (BLCR's
// "checkpoint time" in Table 4). The sink is closed on success and aborted
// on error.
func (c *Checkpointer) Checkpoint(p *proc.Process, sink stream.Sink) (*Stats, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("blcr: cannot checkpoint %s process %s", p.State(), p.Name())
	}
	acc := simclock.NewPipelineAccum()

	// Freeze: every thread reaches a safe point.
	p.PauseSteps()
	defer p.ResumeSteps()
	acc.Add(simclock.Duration(p.ThreadCount()) * c.model.ThreadQuiesce)

	st, err := c.write(p, sink, acc)
	if err != nil {
		sink.Abort()
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	st.Duration = acc.Total()
	return st, nil
}

// CheckpointFrozen serializes an already-quiesced process without touching
// its step gate. Snapify's capture path uses it: the pause protocol has
// already drained the channels and frozen the process (Section 4.1).
func (c *Checkpointer) CheckpointFrozen(p *proc.Process, sink stream.Sink) (*Stats, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("blcr: cannot checkpoint %s process %s", p.State(), p.Name())
	}
	acc := simclock.NewPipelineAccum()
	st, err := c.write(p, sink, acc)
	if err != nil {
		sink.Abort()
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	st.Duration = acc.Total()
	if c.sp != nil {
		c.emitStreamSpans(p, "capture_stream", c.sp.start, []simclock.Duration{st.Duration}, []int64{st.Bytes})
	}
	return st, nil
}

func (c *Checkpointer) write(p *proc.Process, sink stream.Sink, acc *simclock.PipelineAccum) (*Stats, error) {
	onHost := p.Node().IsHost()
	st := &Stats{}
	enc := &recEncoder{}

	emit := func(b blob.Blob, meta bool) error {
		cost, err := sink.WriteBlob(b)
		if err != nil {
			return err
		}
		stream.Observe(acc, cost, c.walkStage(onHost, b.Len()))
		st.Bytes += b.Len()
		if meta {
			st.MetaWrites++
		}
		return nil
	}

	regions := p.Regions()
	threads := p.ThreadNames()

	// Header.
	if err := emit(enc.record(tagHeader, func(e *recEncoder) {
		e.str(magic)
		e.u64(formatVersion)
	}), true); err != nil {
		return nil, err
	}
	// Process metadata.
	if err := emit(enc.record(tagProcMeta, func(e *recEncoder) {
		e.str(p.Name())
		e.u64(uint64(p.PID()))
		e.u64(uint64(p.Node()))
		e.u64(uint64(len(threads)))
		e.u64(uint64(len(regions)))
	}), true); err != nil {
		return nil, err
	}
	// One small record per thread — part of BLCR's small-write preamble.
	for _, name := range threads {
		if err := emit(enc.record(tagThread, func(e *recEncoder) {
			e.str(name)
		}), true); err != nil {
			return nil, err
		}
		st.Threads++
	}
	// Regions: a small metadata record, then the pages in large chunks.
	// Local-store regions are memory-mapped files (COI buffers, Section 2):
	// like the real BLCR, only the mapping is recorded — the content is
	// external, saved separately by Snapify's pause phase. This is why the
	// paper reports snapshot size and local-store size as distinct
	// quantities (Fig 10b).
	for _, r := range regions {
		pinned := uint64(0)
		if r.Pinned() {
			pinned = 1
		}
		external := uint64(0)
		if r.Kind() == proc.RegionLocalStore {
			external = 1
		}
		if err := emit(enc.record(tagRegionMeta, func(e *recEncoder) {
			e.str(r.Name())
			e.u64(uint64(r.Kind()))
			e.u64(r.Seed())
			e.u64(uint64(r.Size()))
			e.u64(pinned)
			e.u64(external)
		}), true); err != nil {
			return nil, err
		}
		if external == 0 {
			snap := r.Snapshot()
			if err := snap.ForEachChunk(PageChunk, func(chunk blob.Blob) error {
				return emit(chunk, false)
			}); err != nil {
				return nil, err
			}
		}
		st.Regions++
	}
	// Trailer.
	if err := emit(enc.record(tagTrailer, func(e *recEncoder) {
		e.u64(uint64(len(regions)))
	}), true); err != nil {
		return nil, err
	}
	return st, nil
}
