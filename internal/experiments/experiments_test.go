package experiments

import (
	"strings"
	"testing"
)

func TestTable2Renders(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Xeon Phi 5110P", "8GB per coprocessor", "E5-2630"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Table3Sizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Errorf("%v\n%s", err, res.Render())
	}
	// The paper's headline factors at 1 GB: write ~6x vs NFS, ~30x vs
	// scp; read ~3x vs NFS, ~22x vs scp. Accept the same order.
	last := res.Rows[len(res.Rows)-1]
	if f := ratio(last.NFSWrite, last.SnapifyIOWrite); f < 3 || f > 12 {
		t.Errorf("1GB write vs NFS = %.1fx, paper reports ~6x", f)
	}
	if f := ratio(last.SCPWrite, last.SnapifyIOWrite); f < 12 || f > 60 {
		t.Errorf("1GB write vs scp = %.1fx, paper reports ~30x", f)
	}
	if f := ratio(last.NFSRead, last.SnapifyIORead); f < 1.5 || f > 8 {
		t.Errorf("1GB read vs NFS = %.1fx, paper reports ~3x", f)
	}
	if f := ratio(last.SCPRead, last.SnapifyIORead); f < 8 || f > 45 {
		t.Errorf("1GB read vs scp = %.1fx, paper reports ~22x", f)
	}
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	res, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Table4Sizes) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Errorf("%v\n%s", err, res.Render())
	}
}

func TestFig9ShapeMatchesPaper(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Errorf("%v\n%s", err, res.Render())
	}
}

func TestFig10ShapeMatchesPaper(t *testing.T) {
	res, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Errorf("%v\n%s", err, res.Render())
	}
}

func TestFig11ShapeMatchesPaper(t *testing.T) {
	res, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Errorf("%v\n%s", err, res.Render())
	}
}
