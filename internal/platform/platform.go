// Package platform assembles one simulated Xeon Phi server: the host and
// cards with their file systems, the PCIe fabric, the SCIF namespace, the
// Snapify-IO daemons, the process table, and the checkpointer. Every layer
// above (COI, Snapify, MPI, the workloads) runs against a Platform.
package platform

import (
	"fmt"

	"snapify/internal/blcr"
	"snapify/internal/blob"
	"snapify/internal/nfs"
	"snapify/internal/obs"
	"snapify/internal/phi"
	"snapify/internal/proc"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapifyio"
	"snapify/internal/snapstore"
	"snapify/internal/vfs"
)

// Platform is one assembled Xeon Phi server.
type Platform struct {
	Server *phi.Server
	Net    *scif.Network
	IO     *snapifyio.Service
	Procs  *proc.Table
	CR     *blcr.Checkpointer

	// Store is the host's content-addressed snapshot repository. The host
	// Snapify-IO daemon serves its file system through the store's overlay,
	// so store-resident snapshots are readable by every existing path, and
	// dedup-aware captures (core.StoreOptions) negotiate against it.
	Store *snapstore.Store

	// Obs is the platform-wide observability layer (virtual-clock span
	// tracer + metrics registry). Per-platform, not process-global: tests
	// run many platforms concurrently and their timelines are unrelated.
	Obs *obs.Obs

	// SnapifyEnabled controls whether the COI runtime carries the Snapify
	// pause-protocol instrumentation (the locks and blocking sends of
	// Section 4.1). Fig 9 measures the cost of exactly this flag.
	SnapifyEnabled bool

	mounts map[simnet.NodeID]*nfs.Mount
}

// Config parameterizes a platform.
type Config struct {
	Server phi.ServerConfig
	// NoSnapify builds the COI runtime without Snapify instrumentation
	// (the Fig 9 baseline).
	NoSnapify bool
}

// New assembles a platform and starts a Snapify-IO daemon on every node.
// On failure the daemons already started are stopped before the error is
// returned, so a half-built platform never leaks running goroutines.
func New(cfg Config) (*Platform, error) {
	server := phi.NewServer(cfg.Server)
	o := obs.New()
	server.Fabric.PublishMetrics(o.Metrics)
	net := scif.NewNetwork(server.Fabric)
	io := snapifyio.NewService(net, o)
	// The store consults the fabric's injector lazily: chaos plans are
	// armed after the platform is built.
	store := snapstore.New(server.Model(), server.Host.FS, o, server.Fabric.Injector)
	if _, err := io.StartDaemon(simnet.HostNode, snapstore.Overlay(store, vfs.Host(server.Host.FS))); err != nil {
		io.Stop()
		return nil, fmt.Errorf("platform: starting host Snapify-IO daemon: %w", err)
	}
	if err := io.AttachStore(simnet.HostNode, store); err != nil {
		io.Stop()
		return nil, fmt.Errorf("platform: attaching snapshot store: %w", err)
	}
	for _, d := range server.Devices {
		if _, err := io.StartDaemon(d.Node, vfs.Ram(d.FS)); err != nil {
			io.Stop()
			return nil, fmt.Errorf("platform: starting Snapify-IO daemon on %v: %w", d.Node, err)
		}
	}
	p := &Platform{
		Server:         server,
		Net:            net,
		IO:             io,
		Procs:          proc.NewTable(),
		CR:             blcr.New(server.Model()),
		Store:          store,
		Obs:            o,
		SnapifyEnabled: !cfg.NoSnapify,
		mounts:         make(map[simnet.NodeID]*nfs.Mount),
	}
	for _, d := range server.Devices {
		p.mounts[d.Node] = nfs.NewMount(server.Fabric, d.Node, server.Host.FS)
	}
	// MPSS keeps the device runtime libraries on the host file system;
	// Snapify's pause copies them into each snapshot directory.
	if _, err := server.Host.FS.WriteFile(RuntimeLibsPath, blob.Synthetic(0xF00D, 24*simclock.MiB)); err != nil {
		io.Stop()
		return nil, fmt.Errorf("platform: seeding runtime libraries: %w", err)
	}
	return p, nil
}

// RuntimeLibsPath is where MPSS keeps the device runtime libraries on the
// host file system.
const RuntimeLibsPath = "/usr/lib64/mic/runtime_libs"

// Model returns the platform's cost model.
func (p *Platform) Model() *simclock.Model { return p.Server.Model() }

// NFS returns the NFS mount of the host file system on the given card.
func (p *Platform) NFS(node simnet.NodeID) *nfs.Mount {
	m, ok := p.mounts[node]
	if !ok {
		panic(fmt.Sprintf("platform: no NFS mount on %v", node)) //nolint:paniclib // caller bug: an NFS mount exists for every device by construction
	}
	return m
}

// Device returns the card at node.
func (p *Platform) Device(node simnet.NodeID) *phi.Device { return p.Server.Device(node) }

// Host returns the host.
func (p *Platform) Host() *phi.Host { return p.Server.Host }
