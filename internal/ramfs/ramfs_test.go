package ramfs

import (
	"errors"
	"io"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/simclock"
)

// fakeBudget is a simple capacity counter for tests.
type fakeBudget struct {
	capacity, used int64
}

func (b *fakeBudget) Reserve(n int64) error {
	if b.used+n > b.capacity {
		return errors.New("out of memory")
	}
	b.used += n
	return nil
}

func (b *fakeBudget) Release(n int64) {
	b.used -= n
	if b.used < 0 {
		panic("over-release")
	}
}

func newTestFS(capacity int64) (*FS, *fakeBudget) {
	b := &fakeBudget{capacity: capacity}
	return New(simclock.Default(), b), b
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs, bud := newTestFS(1 << 20)
	content := blob.FromBytes([]byte("local store of an offload process"))
	d, err := fs.WriteFile("/tmp/coi_store_1", content)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("write cost must be positive")
	}
	got, rd, err := fs.ReadFile("/tmp/coi_store_1")
	if err != nil {
		t.Fatal(err)
	}
	if rd <= 0 {
		t.Error("read cost must be positive")
	}
	if !blob.Equal(got, content) {
		t.Error("content mismatch")
	}
	if bud.used != content.Len() {
		t.Errorf("budget used = %d, want %d", bud.used, content.Len())
	}
}

func TestCapacityEnforced(t *testing.T) {
	fs, bud := newTestFS(1000)
	if _, err := fs.WriteFile("a", blob.Zeros(600)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFile("b", blob.Zeros(600)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// The failed write must not leak budget.
	if bud.used != 600 {
		t.Errorf("budget used = %d after failed write, want 600", bud.used)
	}
	// Removing frees space for the retry.
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.WriteFile("b", blob.Zeros(600)); err != nil {
		t.Fatalf("retry after remove failed: %v", err)
	}
}

func TestOverwriteReleasesOld(t *testing.T) {
	fs, bud := newTestFS(1000)
	fs.WriteFile("f", blob.Zeros(700))
	if _, err := fs.WriteFile("f", blob.Zeros(200)); err != nil {
		// Overwrite transiently needs old+new; with 1000 capacity and
		// 700 used, a 200-byte overwrite fits.
		t.Fatal(err)
	}
	if bud.used != 200 {
		t.Errorf("budget used = %d after overwrite, want 200", bud.used)
	}
	if n, _ := fs.Size("f"); n != 200 {
		t.Errorf("size = %d, want 200", n)
	}
}

func TestStreamingWriterAbort(t *testing.T) {
	fs, bud := newTestFS(1000)
	w, err := fs.Create("big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteBlob(blob.Zeros(400)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteBlob(blob.Zeros(400)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteBlob(blob.Zeros(400)); err == nil {
		t.Fatal("third chunk should exceed capacity")
	}
	w.Abort()
	if bud.used != 0 {
		t.Errorf("budget used = %d after abort, want 0", bud.used)
	}
	if fs.Exists("big") {
		t.Error("aborted file must not be visible")
	}
}

func TestWriterVisibilityAtClose(t *testing.T) {
	fs, _ := newTestFS(1000)
	w, _ := fs.Create("f")
	w.WriteBlob(blob.FromBytes([]byte("abc")))
	if fs.Exists("f") {
		t.Error("file visible before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("f") {
		t.Error("file not visible after Close")
	}
	if _, err := w.WriteBlob(blob.Zeros(1)); err == nil {
		t.Error("write after Close must fail")
	}
}

func TestReaderChunks(t *testing.T) {
	fs, _ := newTestFS(1 << 20)
	content := blob.Synthetic(9, 10*1024)
	fs.WriteFile("f", content)
	r, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != content.Len() {
		t.Errorf("Size = %d", r.Size())
	}
	var parts []blob.Blob
	for {
		c, d, err := r.Next(4096)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Error("chunk read cost must be positive")
		}
		parts = append(parts, c)
	}
	if !blob.Equal(blob.Concat(parts...), content) {
		t.Error("chunked read content mismatch")
	}
}

func TestRemoveAllAndList(t *testing.T) {
	fs, bud := newTestFS(1 << 20)
	fs.WriteFile("/tmp/coi_procs/1/a", blob.Zeros(10))
	fs.WriteFile("/tmp/coi_procs/1/b", blob.Zeros(20))
	fs.WriteFile("/tmp/other", blob.Zeros(30))
	if got := fs.List("/tmp/coi_procs/"); len(got) != 2 {
		t.Fatalf("List = %v", got)
	}
	if n := fs.RemoveAll("/tmp/coi_procs/"); n != 2 {
		t.Fatalf("RemoveAll = %d, want 2", n)
	}
	if bud.used != 30 {
		t.Errorf("budget used = %d, want 30", bud.used)
	}
	if fs.Usage() != 30 {
		t.Errorf("Usage = %d, want 30", fs.Usage())
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs, _ := newTestFS(100)
	if _, _, err := fs.ReadFile("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("ReadFile: %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove: %v", err)
	}
	if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open: %v", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Size: %v", err)
	}
	if _, err := fs.Create(""); err == nil {
		t.Error("Create(\"\") must fail")
	}
}
