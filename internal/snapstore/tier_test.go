package snapstore

import (
	"strings"
	"testing"

	"snapify/internal/blob"
)

// TestTierZeroPolicyIsSingleTier pins the compatibility contract: the
// zero TierPolicy never demotes, never caches, and reads cost exactly
// one host file-system read — the PR 5 single-tier store.
func TestTierZeroPolicyIsSingleTier(t *testing.T) {
	e := newEnv(t)
	content := testContent(1, 4096)
	putAll(t, e, "/snap/a", "", content, 1024)

	if got := readAll(t, e, "/snap/a"); !blob.Equal(got, content) {
		t.Fatalf("round trip mismatch")
	}
	ts := e.st.TierStats()
	if ts.ColdChunks != 0 || ts.CacheChunks != 0 {
		t.Fatalf("zero policy placed chunks outside host: %+v", ts)
	}
	if ts.HostChunks != 4 {
		t.Fatalf("HostChunks = %d, want 4", ts.HostChunks)
	}
	if ts.Demotions != 0 || ts.Promotions != 0 {
		t.Fatalf("zero policy migrated chunks: %+v", ts)
	}
	if ts.HostHits != 4 {
		t.Fatalf("HostHits = %d, want 4", ts.HostHits)
	}
}

// TestTierDemotionAndPromotion drives the host budget below the resident
// set and checks LRU demotion to cold, then a read promoting back.
func TestTierDemotionAndPromotion(t *testing.T) {
	e := newEnv(t)
	content := testContent(2, 8*1024)
	putAll(t, e, "/snap/a", "", content, 1024) // 8 chunks x 1 KiB

	if _, err := e.st.SetTierPolicy(TierPolicy{HostBytes: 4 * 1024}); err != nil {
		t.Fatalf("set policy: %v", err)
	}
	ts := e.st.TierStats()
	if ts.HostBytes > 4*1024 {
		t.Fatalf("host tier over budget after rebalance: %+v", ts)
	}
	if ts.ColdChunks != 4 || ts.Demotions != 4 {
		t.Fatalf("want 4 demotions to cold, got %+v", ts)
	}

	// The store still serves the full image — cold chunks promote on read.
	if got := readAll(t, e, "/snap/a"); !blob.Equal(got, content) {
		t.Fatalf("round trip mismatch after demotion")
	}
	// The sequential scan thrashes a half-sized LRU deterministically:
	// each of the 4 cold chunks promotes and demotes a not-yet-read host
	// chunk, so all 8 reads end up served cold.
	ts = e.st.TierStats()
	if ts.ColdHits != 8 {
		t.Fatalf("ColdHits = %d, want 8", ts.ColdHits)
	}
	if ts.Promotions != 8 {
		t.Fatalf("Promotions = %d, want 8", ts.Promotions)
	}
	if ts.HostBytes > 4*1024 {
		t.Fatalf("host tier over budget after promotions: %+v", ts)
	}

	// Verify stays clean across tier moves.
	if problems, _ := e.st.Verify(); len(problems) != 0 {
		t.Fatalf("verify after tier moves: %v", problems)
	}
}

// TestTierColdReadCostsMore pins the simulated object-store penalty: a
// cold read charges strictly more virtual time than a host read of the
// same chunk.
func TestTierColdReadCostsMore(t *testing.T) {
	e := newEnv(t)
	content := testContent(3, 1024)
	putAll(t, e, "/snap/a", "", content, 1024)

	digests := ChunkDigests(content, 1024)
	_, hostDur, err := e.st.ReadChunk(digests[0])
	if err != nil {
		t.Fatalf("host read: %v", err)
	}

	e2 := newEnv(t)
	putAll(t, e2, "/snap/a", "", content, 1024)
	if _, err := e2.st.SetTierPolicy(TierPolicy{HostBytes: 1}); err != nil {
		t.Fatalf("set policy: %v", err)
	}
	if ts := e2.st.TierStats(); ts.ColdChunks != 1 {
		t.Fatalf("chunk not demoted: %+v", ts)
	}
	_, coldDur, err := e2.st.ReadChunk(digests[0])
	if err != nil {
		t.Fatalf("cold read: %v", err)
	}
	if coldDur <= hostDur {
		t.Fatalf("cold read (%v) not slower than host read (%v)", coldDur, hostDur)
	}
}

// TestTierCacheHit checks that a second read of a cached chunk is served
// from the card cache at memcpy cost and counted as a cache hit.
func TestTierCacheHit(t *testing.T) {
	e := newEnv(t)
	content := testContent(4, 2048)
	putAll(t, e, "/snap/a", "", content, 1024)
	if _, err := e.st.SetTierPolicy(TierPolicy{CacheBytes: 4 * 1024}); err != nil {
		t.Fatalf("set policy: %v", err)
	}
	digests := ChunkDigests(content, 1024)

	if _, _, err := e.st.ReadChunk(digests[0]); err != nil {
		t.Fatalf("first read: %v", err)
	}
	b, dur, err := e.st.ReadChunk(digests[0])
	if err != nil {
		t.Fatalf("cached read: %v", err)
	}
	if !blob.Equal(b, content.Slice(0, 1024)) {
		t.Fatalf("cached read content mismatch")
	}
	if want := e.st.model.HostMemcpy(1024); dur != want {
		t.Fatalf("cached read cost %v, want memcpy %v", dur, want)
	}
	ts := e.st.TierStats()
	if ts.CacheHits != 1 || ts.HostHits != 1 {
		t.Fatalf("hits = %+v, want 1 cache + 1 host", ts)
	}
	if ts.HitRatio() != 1 {
		t.Fatalf("HitRatio = %v, want 1 (nothing read cold)", ts.HitRatio())
	}
}

// TestTierCacheEviction bounds the cache: admitting past the budget
// evicts the least recently used entry, and oversized chunks are never
// admitted.
func TestTierCacheEviction(t *testing.T) {
	e := newEnv(t)
	content := testContent(5, 3*1024)
	putAll(t, e, "/snap/a", "", content, 1024)
	if _, err := e.st.SetTierPolicy(TierPolicy{CacheBytes: 2 * 1024}); err != nil {
		t.Fatalf("set policy: %v", err)
	}
	digests := ChunkDigests(content, 1024)
	for _, d := range digests {
		if _, _, err := e.st.ReadChunk(d); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	ts := e.st.TierStats()
	if ts.CacheChunks != 2 || ts.CacheBytes != 2*1024 {
		t.Fatalf("cache not bounded: %+v", ts)
	}
	// digests[0] was evicted by digests[2]'s admission; 1 and 2 remain.
	if _, _, err := e.st.ReadChunk(digests[1]); err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := e.st.TierStats().CacheHits; got != 1 {
		t.Fatalf("CacheHits = %d, want 1", got)
	}

	// A chunk larger than the whole cache is never admitted.
	big := newEnv(t)
	bigContent := testContent(6, 4*1024)
	putAll(t, big, "/snap/b", "", bigContent, 4*1024)
	if _, err := big.st.SetTierPolicy(TierPolicy{CacheBytes: 1024}); err != nil {
		t.Fatalf("set policy: %v", err)
	}
	bd := ChunkDigests(bigContent, 4*1024)
	if _, _, err := big.st.ReadChunk(bd[0]); err != nil {
		t.Fatalf("read: %v", err)
	}
	if ts := big.st.TierStats(); ts.CacheChunks != 0 {
		t.Fatalf("oversized chunk admitted to cache: %+v", ts)
	}
}

// TestTierGCReclaimsCold releases a snapshot whose chunks were demoted
// and checks GC sweeps the cold tier too, leaving placement state empty.
func TestTierGCReclaimsCold(t *testing.T) {
	e := newEnv(t)
	content := testContent(7, 4*1024)
	putAll(t, e, "/snap/a", "", content, 1024)
	if _, err := e.st.SetTierPolicy(TierPolicy{HostBytes: 2 * 1024}); err != nil {
		t.Fatalf("set policy: %v", err)
	}
	if ts := e.st.TierStats(); ts.ColdChunks != 2 {
		t.Fatalf("setup: want 2 cold chunks, got %+v", ts)
	}
	if _, err := e.st.Release("/snap/a"); err != nil {
		t.Fatalf("release: %v", err)
	}
	gs, _, err := e.st.GC(0)
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if gs.ChunksReclaimed != 4 {
		t.Fatalf("ChunksReclaimed = %d, want 4 (host + cold)", gs.ChunksReclaimed)
	}
	ts := e.st.TierStats()
	if ts.HostChunks != 0 || ts.ColdChunks != 0 || ts.HostBytes != 0 {
		t.Fatalf("tier state not empty after GC: %+v", ts)
	}
	if s := e.st.Stats(); s.Chunks != 0 {
		t.Fatalf("Stats.Chunks = %d after GC, want 0", s.Chunks)
	}
}

// TestTierNegotiateSeesColdChunks pins dedup across tiers: a chunk
// demoted to cold still negotiates as "have", so re-capturing identical
// content ships nothing.
func TestTierNegotiateSeesColdChunks(t *testing.T) {
	e := newEnv(t)
	content := testContent(8, 4*1024)
	putAll(t, e, "/snap/a", "", content, 1024)
	if _, err := e.st.SetTierPolicy(TierPolicy{HostBytes: 1}); err != nil {
		t.Fatalf("set policy: %v", err)
	}
	if ts := e.st.TierStats(); ts.ColdChunks != 4 {
		t.Fatalf("setup: want all chunks cold, got %+v", ts)
	}
	shipped := putAll(t, e, "/snap/b", "", content, 1024)
	if shipped != 0 {
		t.Fatalf("re-capture shipped %d chunks, want 0 (cold chunks are still have)", shipped)
	}
}

// TestTierVerifyFlagsDoubleResidency plants a chunk in both tiers and
// checks fsck reports it.
func TestTierVerifyFlagsDoubleResidency(t *testing.T) {
	e := newEnv(t)
	content := testContent(9, 1024)
	putAll(t, e, "/snap/a", "", content, 1024)
	d := ChunkDigests(content, 1024)[0]
	if _, err := e.fs.WriteFile(coldPath(d), content); err != nil {
		t.Fatalf("plant cold copy: %v", err)
	}
	problems, _ := e.st.Verify()
	found := false
	for _, p := range problems {
		if strings.Contains(p, "both host and cold") {
			found = true
		}
	}
	if !found {
		t.Fatalf("verify missed double residency: %v", problems)
	}
}
