package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"snapify/internal/coi"
	"snapify/internal/platform/platformtest"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// TestSnapshotInjectionPreservesResults is the central consistency
// property (Section 3): injecting pause/capture/resume, swap-out/swap-in,
// or migration at arbitrary points of an application's execution must not
// change its final output. The workload interleaves offload calls with
// buffer writes, so every drained channel class is exercised.
func TestSnapshotInjectionPreservesResults(t *testing.T) {
	reference := runScenario(t, 12345, nil)

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var ops []injection
		for i := 0; i < 3; i++ {
			ops = append(ops, injection{
				afterPhase: r.Intn(6),
				kind:       r.Intn(3),
			})
		}
		got := runScenario(t, 12345, ops)
		if got != reference {
			t.Logf("seed %d: injected run = %d, reference = %d (ops %+v)", seed, got, reference, ops)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

type injection struct {
	afterPhase int // which phase boundary to inject at
	kind       int // 0: checkpoint (pause/capture/resume), 1: swap, 2: migrate
}

var scenarioCounter int

// runScenario executes a deterministic multi-phase offload workload and
// returns its final checksum, applying the given injections between
// phases.
func runScenario(t *testing.T, dataSeed int64, ops []injection) uint64 {
	t.Helper()
	scenarioCounter++
	binName := fmt.Sprintf("consistency_%d", scenarioCounter)
	coi.RegisterBinary(consistencyBinary(binName))

	plat := platformtest.Start(t, platformtest.Options{Devices: 2})

	host := plat.Procs.Spawn("host_proc", simnet.HostNode, plat.Host().Mem)
	defer host.Terminate()
	tl := simclock.NewTimeline()
	cp, err := coi.CreateProcess(plat, host, tl, 1, binName)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := cp.CreatePipeline()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := cp.CreateBuffer(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(dataSeed))
	inject := func(phase int) {
		for _, op := range ops {
			if op.afterPhase != phase {
				continue
			}
			dir := fmt.Sprintf("/snap/consistency/%d/%d", scenarioCounter, phase)
			switch op.kind {
			case 0: // checkpoint without termination
				s := NewSnapshot(dir, cp)
				mustOK(t, Pause(s))
				mustOK(t, s.Capture(CaptureOptions{}))
				mustOK(t, Wait(s))
				mustOK(t, Resume(s))
			case 1: // swap out and back in on the same card
				s, err := Swapout(dir, cp, CaptureOptions{})
				mustOK(t, err)
				_, err = Swapin(s, cp.DeviceNode(), RestoreOptions{})
				mustOK(t, err)
			case 2: // migrate to the other card
				target := simnet.NodeID(1)
				if cp.DeviceNode() == 1 {
					target = 2
				}
				_, _, err := Migrate(cp, MigrateOptions{DeviceTo: target, Path: dir})
				mustOK(t, err)
			}
		}
	}

	var final uint64
	for phase := 0; phase < 6; phase++ {
		// Host writes fresh data into the COI buffer (exercises case 2).
		data := make([]byte, 64*1024)
		rng.Read(data)
		mustOK(t, buf.Write(data, 0))

		// Offload call folds the buffer into the running checksum.
		args := make([]byte, 4)
		binary.BigEndian.PutUint32(args, uint32(buf.ID()))
		out, err := pl.RunFunction("fold", args)
		mustOK(t, err)
		final = binary.BigEndian.Uint64(out)

		inject(phase)
	}
	return final
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// consistencyBinary folds buffer bytes into a checksum kept in the state
// region, one 4 KiB page per step.
func consistencyBinary(name string) *coi.Binary {
	bin := coi.NewBinary(name)
	bin.AddRegion("state", proc.RegionHeap, 4096, 0)
	bin.Register("fold", func(ctx *coi.RunContext, args []byte) ([]byte, error) {
		id := int(binary.BigEndian.Uint32(args))
		b := ctx.Buffer(id)
		st := ctx.Region("state")
		acc := make([]byte, 8)
		st.ReadAt(acc, 0)
		sum := binary.BigEndian.Uint64(acc)
		page := make([]byte, 4096)
		for off := int64(0); off < b.Size(); off += 4096 {
			off := off
			if err := ctx.Step(func() {
				b.ReadAt(page, off)
				for _, v := range page {
					sum = sum*1099511628211 + uint64(v)
				}
				binary.BigEndian.PutUint64(acc, sum)
				st.WriteAt(acc, 0)
				ctx.Compute(50 * time.Microsecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, sum)
		return out, nil
	})
	return bin
}
