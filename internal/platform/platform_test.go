package platform_test

import (
	"io"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/platform"
	"snapify/internal/platform/platformtest"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapifyio"
	"snapify/internal/snapstore"
)

func TestNewAssemblesServer(t *testing.T) {
	plat := platformtest.Start(t, platformtest.Options{Devices: 2})
	if got := len(plat.Server.Devices); got != 2 {
		t.Fatalf("server has %d devices, want 2", got)
	}
	if plat.Host() == nil {
		t.Fatal("no host")
	}
	for _, node := range []simnet.NodeID{1, 2} {
		if plat.Device(node) == nil {
			t.Fatalf("no device at node %v", node)
		}
		if plat.NFS(node) == nil {
			t.Fatalf("no NFS mount at node %v", node)
		}
	}
	if plat.Model() == nil {
		t.Fatal("no cost model")
	}
	if !plat.SnapifyEnabled {
		t.Error("Snapify instrumentation off by default")
	}
}

func TestNewSeedsRuntimeLibraries(t *testing.T) {
	plat := platformtest.Start(t, platformtest.Options{})
	b, _, err := plat.Host().FS.ReadFile(platform.RuntimeLibsPath)
	if err != nil {
		t.Fatalf("runtime libs not seeded: %v", err)
	}
	if b.Len() != 24*simclock.MiB {
		t.Errorf("runtime libs are %d bytes, want %d", b.Len(), 24*simclock.MiB)
	}
	if !blob.Equal(b, blob.Synthetic(0xF00D, 24*simclock.MiB)) {
		t.Error("runtime libs content differs from the deterministic seed")
	}
}

func TestStoreServedThroughHostOverlay(t *testing.T) {
	plat := platformtest.Start(t, platformtest.Options{})
	if plat.Store == nil {
		t.Fatal("no store")
	}
	// A store-resident snapshot is visible through the host daemon's
	// overlay: write via the store protocol, read back via the IO path
	// every restore uses.
	const chunk = 16 * 1024
	content := blob.Synthetic(7, 64*1024)
	path := "/snap/overlay_probe"
	digests := snapstore.ChunkDigests(content, chunk)
	need, _, _, err := plat.Store.Negotiate(path, "", content.Len(), chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range need {
		off := int64(idx) * chunk
		n := content.Len() - off
		if n > chunk {
			n = chunk
		}
		if _, err := plat.Store.PutChunkAt(path, off, content.Slice(off, n)); err != nil {
			t.Fatal(err)
		}
	}
	if committed, _, err := plat.Store.CloseUpload(path); err != nil || !committed {
		t.Fatalf("close upload: committed=%v err=%v", committed, err)
	}

	f, err := plat.IO.Open(simnet.HostNode, simnet.HostNode, path, snapifyio.Read)
	if err != nil {
		t.Fatalf("store snapshot invisible through the daemon: %v", err)
	}
	defer f.Close()
	var parts []blob.Blob
	for {
		b, _, err := f.Next(1 << 20)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("daemon read: %v", err)
		}
		parts = append(parts, b)
	}
	if got := blob.Concat(parts...); !blob.Equal(got, content) {
		t.Error("daemon read returned different bytes than the store holds")
	}
}

func TestNoSnapifyOption(t *testing.T) {
	plat := platformtest.Start(t, platformtest.Options{NoSnapify: true})
	if plat.SnapifyEnabled {
		t.Error("NoSnapify platform still reports Snapify enabled")
	}
}

func TestCardMemOption(t *testing.T) {
	plat := platformtest.Start(t, platformtest.Options{CardMem: 1 * simclock.GiB})
	// Total = configured physical memory; some is OS-reserved.
	dev := plat.Device(1)
	if total := dev.Mem.Free() + dev.Mem.Used(); total > 1*simclock.GiB {
		t.Errorf("card reports %d bytes, want <= 1 GiB", total)
	}
	if dev.Mem.Used() == 0 {
		t.Error("no OS reserve carved out of card memory")
	}
}

func TestNFSPanicsOnUnknownNode(t *testing.T) {
	plat := platformtest.Start(t, platformtest.Options{Devices: 1})
	defer func() {
		if recover() == nil {
			t.Error("NFS on a nonexistent node must panic (caller bug)")
		}
	}()
	plat.NFS(simnet.NodeID(99))
}
