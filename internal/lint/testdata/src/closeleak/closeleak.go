// Package closeleak is a golden fixture for the closeleak analyzer:
// every line marked with a want comment must produce exactly one finding
// with the quoted substring, and a line ending in a bare nolint
// directive must produce the amended no-justification finding. See
// golden_test.go.
package closeleak

import (
	"snapify/internal/blob"
	"snapify/internal/hostfs"
)

// copyFile: the classic two-open leak — the second Create's error return
// leaves the first writer open. The error-paired facts must NOT flag the
// first `return err`: there the handle was never valid.
func copyFile(fs *hostfs.FS, a, b string) error {
	w1, err := fs.Create(a) // want "is not released on the path leaving the function"
	if err != nil {
		return err
	}
	w2, err := fs.Create(b)
	if err != nil {
		return err
	}
	w2.Abort()
	return w1.Close()
}

// copyFileClean: the fix — abort the survivor on the error path.
func copyFileClean(fs *hostfs.FS, a, b string) error {
	w1, err := fs.Create(a)
	if err != nil {
		return err
	}
	w2, err := fs.Create(b)
	if err != nil {
		w1.Abort()
		return err
	}
	w2.Abort()
	return w1.Close()
}

// leakOnWriteError: opened, written to, but only closed on success.
func leakOnWriteError(fs *hostfs.FS, p string, content blob.Blob) error {
	w, err := fs.Create(p) // want "is not released on the path leaving the function"
	if err != nil {
		return err
	}
	if _, err := w.WriteBlob(content); err != nil {
		return err
	}
	return w.Close()
}

// deferClose: a deferred release discharges every exit at once.
func deferClose(fs *hostfs.FS, p string, content blob.Blob) error {
	w, err := fs.Create(p)
	if err != nil {
		return err
	}
	defer w.Close() //nolint:errcheck // fixture: only closeleak runs here
	if _, err := w.WriteBlob(content); err != nil {
		return err
	}
	return nil
}

// alias: `own := w` moves the obligation to the new name.
func alias(fs *hostfs.FS, p string) error {
	w, err := fs.Create(p)
	if err != nil {
		return err
	}
	own := w
	return own.Close()
}

// holder carries a writer whose lifetime outlives the opening function.
type holder struct{ w *hostfs.Writer }

// stash: storing the handle in a returned struct is an escape — the
// obligation moved to code this intraprocedural pass cannot see.
func stash(fs *hostfs.FS, p string) (*holder, error) {
	w, err := fs.Create(p)
	if err != nil {
		return nil, err
	}
	return &holder{w: w}, nil
}

func suppressed(fs *hostfs.FS, p string, content blob.Blob) error {
	w, err := fs.Create(p) //nolint:closeleak // golden fixture: a justified directive suppresses the finding
	if err != nil {
		return err
	}
	_, werr := w.WriteBlob(content)
	return werr
}

// A directive with no justification must NOT suppress: the finding is
// reported with a message explaining what a directive needs.
func bareDirective(fs *hostfs.FS, p string, content blob.Blob) error {
	w, err := fs.Create(p) //nolint:closeleak
	if err != nil {
		return err
	}
	_, werr := w.WriteBlob(content)
	return werr
}
