package analyze

import (
	"fmt"
	"sort"
	"strings"

	"snapify/internal/obs"
)

// PathSegment is one link of the critical path: during [Start, Start+Dur)
// the named span is what end-to-end time was spent under. Idle gaps —
// virtual time no lane was working — appear as "(idle)" segments so the
// chain tiles the whole window.
type PathSegment struct {
	Name    string `json:"name"`
	Process string `json:"process,omitempty"`
	Thread  string `json:"thread,omitempty"`
	Scope   uint64 `json:"scope,omitempty"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// BlameEntry aggregates critical-path time charged to one span name.
type BlameEntry struct {
	Name     string  `json:"name"`
	TotalNs  int64   `json:"total_ns"`
	Percent  float64 `json:"percent"`
	Segments int     `json:"segments"`
}

// StragglerSkew measures fan-out imbalance: for a scope whose same-named
// spans run on several lanes (the parallel capture/restore streams), the
// skew is how long the last lane outlived the first — pure straggler
// time the paper's phase breakdown attributes to the slowest stream.
type StragglerSkew struct {
	Name     string `json:"name"`
	Scope    uint64 `json:"scope"`
	Lanes    int    `json:"lanes"`
	SkewNs   int64  `json:"skew_ns"`
	LastLane string `json:"last_lane"`
}

// RoundStat is one pre-copy migration round on the critical path.
type RoundStat struct {
	Round        int64 `json:"round"`
	DurNs        int64 `json:"dur_ns"`
	DirtyBytes   int64 `json:"dirty_bytes"`
	ShippedBytes int64 `json:"shipped_bytes"`
}

// PathReport is the result of CriticalPath: the blame chain tiling
// [StartNs, EndNs], aggregated blame, straggler skews, and (for
// migration traces) per-round stats. The chain's durations sum to
// EndToEndNs exactly — CriticalPath errors out rather than return a
// report violating that invariant.
type PathReport struct {
	StartNs    int64           `json:"start_ns"`
	EndNs      int64           `json:"end_ns"`
	EndToEndNs int64           `json:"end_to_end_ns"`
	Spans      int             `json:"spans"`
	Chain      []PathSegment   `json:"chain"`
	Blame      []BlameEntry    `json:"blame"`
	Skews      []StragglerSkew `json:"skews,omitempty"`
	Rounds     []RoundStat     `json:"rounds,omitempty"`
}

// ChainTotalNs returns the sum of chain segment durations (== EndToEndNs).
func (r *PathReport) ChainTotalNs() int64 {
	var total int64
	for _, seg := range r.Chain {
		total += seg.DurNs
	}
	return total
}

// CriticalPath extracts the blame chain from a set of spans (typically
// ParseChromeTrace output, optionally filtered to one scope). The
// algorithm is a deterministic sweep: cut the trace window at every
// span boundary, and for each elementary interval charge the deepest
// active span — ties broken toward the span that ends latest (the
// straggler), then starts latest, then by lane order and emission
// order. Intervals with no active span are charged to "(idle)".
// Adjacent intervals with the same blame merge, so the chain reads as
// the paper's phase breakdown: pause → capture streams → ship →
// restore → resume, with the straggling stream blamed for skew time.
func CriticalPath(spans []obs.Span) (*PathReport, error) {
	// Zero-duration marker spans (e.g. capture_failed) carry no time.
	var active []obs.Span
	for _, s := range spans {
		if s.Dur > 0 {
			active = append(active, s)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("analyze: no spans with nonzero duration")
	}

	laneOf := map[[2]string]int{}
	var laneOrder [][2]string
	items := make([]ispan, 0, len(active))
	for i, s := range active {
		key := [2]string{s.Process, s.Thread}
		if _, ok := laneOf[key]; !ok {
			laneOf[key] = len(laneOrder)
			laneOrder = append(laneOrder, key)
		}
		items = append(items, ispan{Span: s, lane: laneOf[key], idx: i})
	}
	// Nesting depth within a lane: a contains b when a's interval covers
	// b's and is strictly larger (equal intervals parent by emission
	// order, matching the validator's nesting stack).
	for i := range items {
		for j := range items {
			if i == j || items[i].lane != items[j].lane {
				continue
			}
			a, b := items[j], items[i]
			if a.Start <= b.Start && a.End() >= b.End() &&
				(a.Start < b.Start || a.End() > b.End() || a.idx < b.idx) {
				items[i].depth++
			}
		}
	}

	// Elementary intervals: every span boundary cuts the window.
	bounds := make([]int64, 0, 2*len(items))
	for _, it := range items {
		bounds = append(bounds, int64(it.Start), int64(it.End()))
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}

	var chain []PathSegment
	for i := 0; i+1 < len(uniq); i++ {
		lo, hi := uniq[i], uniq[i+1]
		best := -1
		for j, it := range items {
			if int64(it.Start) > lo || int64(it.End()) < hi {
				continue
			}
			if best < 0 || blameLess(items[best], it) {
				best = j
			}
		}
		seg := PathSegment{Name: "(idle)", StartNs: lo, DurNs: hi - lo}
		if best >= 0 {
			it := items[best]
			seg.Name = it.Name
			seg.Process = it.Process
			seg.Thread = it.Thread
			seg.Scope = it.Scope
		}
		if n := len(chain); n > 0 && chain[n-1].Name == seg.Name &&
			chain[n-1].Process == seg.Process && chain[n-1].Thread == seg.Thread &&
			chain[n-1].Scope == seg.Scope {
			chain[n-1].DurNs += seg.DurNs
			continue
		}
		chain = append(chain, seg)
	}

	r := &PathReport{
		StartNs: uniq[0],
		EndNs:   uniq[len(uniq)-1],
		Spans:   len(spans),
		Chain:   chain,
	}
	r.EndToEndNs = r.EndNs - r.StartNs
	if got := r.ChainTotalNs(); got != r.EndToEndNs {
		return nil, fmt.Errorf("analyze: chain total %d ns != end-to-end %d ns (internal invariant)",
			got, r.EndToEndNs)
	}
	r.Blame = blameTotals(chain, r.EndToEndNs)
	r.Skews = stragglerSkews(active)
	r.Rounds = roundStats(active)
	return r, nil
}

// ispan is one span annotated for the sweep: its lane (first-appearance
// order), emission index, and nesting depth within the lane.
type ispan struct {
	obs.Span
	lane  int
	idx   int
	depth int
}

// blameLess reports whether b should be blamed over a for an interval
// both cover: deeper wins; then the later-ending (straggler), the
// later-starting, the later lane, the later emission.
func blameLess(a, b ispan) bool {
	if a.depth != b.depth {
		return b.depth > a.depth
	}
	if a.End() != b.End() {
		return b.End() > a.End()
	}
	if a.Start != b.Start {
		return b.Start > a.Start
	}
	if a.lane != b.lane {
		return b.lane > a.lane
	}
	return b.idx > a.idx
}

// blameTotals aggregates chain time by span name, descending.
func blameTotals(chain []PathSegment, endToEnd int64) []BlameEntry {
	totals := map[string]*BlameEntry{}
	var order []string
	for _, seg := range chain {
		e, ok := totals[seg.Name]
		if !ok {
			e = &BlameEntry{Name: seg.Name}
			totals[seg.Name] = e
			order = append(order, seg.Name)
		}
		e.TotalNs += seg.DurNs
		e.Segments++
	}
	out := make([]BlameEntry, 0, len(order))
	for _, name := range order {
		e := totals[name]
		if endToEnd > 0 {
			e.Percent = 100 * float64(e.TotalNs) / float64(endToEnd)
		}
		out = append(out, *e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}

// stragglerSkews finds (scope, name) groups fanned out over 2+ lanes
// and measures last-finisher minus first-finisher.
func stragglerSkews(spans []obs.Span) []StragglerSkew {
	type key struct {
		scope uint64
		name  string
	}
	type group struct {
		lanes          map[[2]string]bool
		minEnd, maxEnd int64
		lastLane       string
	}
	groups := map[key]*group{}
	var order []key
	for _, s := range spans {
		if s.Scope == 0 {
			continue
		}
		k := key{s.Scope, s.Name}
		g, ok := groups[k]
		if !ok {
			g = &group{lanes: map[[2]string]bool{}, minEnd: int64(s.End()), maxEnd: int64(s.End())}
			groups[k] = g
			order = append(order, k)
		}
		g.lanes[[2]string{s.Process, s.Thread}] = true
		if e := int64(s.End()); e < g.minEnd {
			g.minEnd = e
		} else if e > g.maxEnd {
			g.maxEnd = e
		}
		if int64(s.End()) == g.maxEnd {
			g.lastLane = s.Process + "/" + s.Thread
		}
	}
	var out []StragglerSkew
	for _, k := range order {
		g := groups[k]
		if len(g.lanes) < 2 {
			continue
		}
		out = append(out, StragglerSkew{
			Name:     k.name,
			Scope:    k.scope,
			Lanes:    len(g.lanes),
			SkewNs:   g.maxEnd - g.minEnd,
			LastLane: g.lastLane,
		})
	}
	return out
}

// roundStats extracts pre-copy round spans (migration traces).
func roundStats(spans []obs.Span) []RoundStat {
	var out []RoundStat
	for _, s := range spans {
		if s.Name != "precopy_round" {
			continue
		}
		out = append(out, RoundStat{
			Round:        s.Args["round"],
			DurNs:        int64(s.Dur),
			DirtyBytes:   s.Args["dirty_bytes"],
			ShippedBytes: s.Args["shipped_bytes"],
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Round < out[j].Round })
	return out
}

// Render formats the report as the phase-breakdown table the paper's
// figure 9 presents: the chain in time order, then blame ranked by
// share of end-to-end, then skews and rounds when present. topN limits
// the blame table (0 = all).
func (r *PathReport) Render(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d spans, end-to-end %s (virtual)\n",
		r.Spans, fmtNs(r.EndToEndNs))
	fmt.Fprintf(&b, "window: [%s, %s]\n\n", fmtNs(r.StartNs), fmtNs(r.EndNs))
	b.WriteString("chain (time order):\n")
	for _, seg := range r.Chain {
		lane := ""
		if seg.Process != "" {
			lane = "  [" + seg.Process + "/" + seg.Thread + "]"
		}
		fmt.Fprintf(&b, "  %12s  %-28s %6.1f%%%s\n",
			fmtNs(seg.DurNs), seg.Name, 100*float64(seg.DurNs)/float64(max64(r.EndToEndNs, 1)), lane)
	}
	b.WriteString("\nblame (share of end-to-end):\n")
	blame := r.Blame
	if topN > 0 && len(blame) > topN {
		blame = blame[:topN]
	}
	for _, e := range blame {
		fmt.Fprintf(&b, "  %6.1f%%  %12s  %-28s (%d segment(s))\n",
			e.Percent, fmtNs(e.TotalNs), e.Name, e.Segments)
	}
	if len(r.Skews) > 0 {
		b.WriteString("\nstraggler skew (fan-out last-minus-first finisher):\n")
		for _, sk := range r.Skews {
			fmt.Fprintf(&b, "  %12s  %-28s scope %d over %d lanes, last %s\n",
				fmtNs(sk.SkewNs), sk.Name, sk.Scope, sk.Lanes, sk.LastLane)
		}
	}
	if len(r.Rounds) > 0 {
		b.WriteString("\npre-copy rounds:\n")
		for _, rd := range r.Rounds {
			fmt.Fprintf(&b, "  round %2d  %12s  dirty %d B  shipped %d B\n",
				rd.Round, fmtNs(rd.DurNs), rd.DirtyBytes, rd.ShippedBytes)
		}
	}
	return b.String()
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
