// Package platformtest is the shared test harness for suites that need
// a running platform: it assembles a simulated server, starts the COI
// daemons, and registers teardown with the test. The core, sched, and
// chaos suites all build their platforms here instead of repeating the
// platform.New + coi.StartDaemons + cleanup dance.
//
// It lives in its own package (not platform's test files) because the
// COI layer imports platform — only a separate package can wire both
// sides together for everyone.
package platformtest

import (
	"testing"

	"snapify/internal/coi"
	"snapify/internal/phi"
	"snapify/internal/platform"
)

// Options configures a test platform. The zero value is one card with
// the default memory — the smallest useful server.
type Options struct {
	// Devices is the card count; 0 means 1.
	Devices int
	// CardMem is each card's physical memory in bytes; 0 uses the phi
	// default.
	CardMem int64
	// NoSnapify builds the COI runtime without the Snapify pause
	// instrumentation (the Fig 9 baseline).
	NoSnapify bool
}

// Start assembles a platform, starts its COI daemons, and registers
// cleanup with t. Fatal on any setup failure.
func Start(t testing.TB, opts Options) *platform.Platform {
	t.Helper()
	devices := opts.Devices
	if devices == 0 {
		devices = 1
	}
	plat, err := platform.New(platform.Config{
		Server: phi.ServerConfig{
			Devices: devices,
			Device:  phi.DeviceConfig{MemBytes: opts.CardMem},
		},
		NoSnapify: opts.NoSnapify,
	})
	if err != nil {
		t.Fatalf("platformtest: building platform: %v", err)
	}
	if err := coi.StartDaemons(plat); err != nil {
		t.Fatalf("platformtest: starting COI daemons: %v", err)
	}
	t.Cleanup(func() { coi.StopDaemons(plat) })
	return plat
}
