package experiments

import (
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/trace"
	"snapify/internal/workloads"
)

// Fig10Row is one benchmark's full snapshot-lifecycle measurements.
type Fig10Row struct {
	Code string

	// (a) checkpoint time breakdown.
	Pause       simclock.Duration
	HostCapture simclock.Duration
	DevCapture  simclock.Duration
	CkptTotal   simclock.Duration

	// (b) checkpoint sizes.
	HostBytes, DevBytes, LocalStoreBytes int64

	// (c) restart time breakdown.
	HostRestore  simclock.Duration
	LocalCopy    simclock.Duration
	DevRestore   simclock.Duration
	RestartTotal simclock.Duration

	// (d) migration.
	MigPause, MigCapture, MigRestore simclock.Duration
	MigTotal                         simclock.Duration

	// (e) swap-out, (f) swap-in.
	SwapOutPause, SwapOutCapture simclock.Duration
	SwapOutTotal                 simclock.Duration
	SwapInRestore, SwapInResume  simclock.Duration
	SwapInTotal                  simclock.Duration
}

// Fig10Result holds all six sub-figures.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 runs the full snapshot lifecycle for every OpenMP benchmark:
// checkpoint (a, b), restart (c), migration (d), swap-out (e), and
// swap-in (f).
func Fig10() (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, spec := range workloads.OpenMP {
		row, err := fig10One(spec)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", spec.Code, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func fig10One(spec workloads.Spec) (*Fig10Row, error) {
	plat, err := platform.New(platform.Config{Server: serverConfig()})
	if err != nil {
		return nil, err
	}
	if err := coi.StartDaemons(plat); err != nil {
		return nil, err
	}
	defer coi.StopDaemons(plat)
	defer plat.IO.Stop()

	// A short prefix of the run; footprints, not progress, drive snapshot
	// cost.
	short := spec
	short.Calls = 4
	in, err := workloads.Launch(plat, short, 1)
	if err != nil {
		return nil, err
	}
	if _, err := in.RunCalls(2); err != nil {
		return nil, err
	}

	row := &Fig10Row{Code: spec.Code}
	dir := "/fig10/" + spec.Code

	// (a)+(b): full-application checkpoint.
	app := core.NewApp(plat, in.CP)
	cr, err := app.Checkpoint(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	row.Pause = cr.Offload.PauseTotal()
	row.HostCapture = cr.HostCapture
	row.DevCapture = cr.Offload.Capture
	row.CkptTotal = cr.Total()
	row.HostBytes = cr.HostSnapshotBytes
	row.DevBytes = cr.Offload.SnapshotBytes
	row.LocalStoreBytes = cr.Offload.LocalStoreBytes

	// (c): the application dies and restarts from the snapshot.
	in.Close()
	app2, host2, rr, err := core.RestartApp(plat, dir)
	if err != nil {
		return nil, fmt.Errorf("restart: %w", err)
	}
	row.HostRestore = rr.HostRestore
	row.LocalCopy = rr.Offload.RestoreLocal
	row.DevRestore = rr.Offload.RestoreDevice + rr.Offload.RestoreReconnect
	row.RestartTotal = rr.Total()

	// (d): migrate the restarted process to the other card; the local
	// store streams device-to-device.
	cp := app2.Proc()
	_, msnap, err := core.Migrate(cp, core.MigrateOptions{DeviceTo: 2, Path: dir + "/mig"})
	if err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	row.MigPause = msnap.Report.PauseTotal()
	row.MigCapture = msnap.Report.Capture
	row.MigRestore = msnap.Report.RestoreTotal()
	row.MigTotal = row.MigPause + row.MigCapture + row.MigRestore + msnap.Report.Resume

	// (e)+(f): swap out and back in.
	ssnap, err := core.Swapout(dir+"/swap", cp, core.CaptureOptions{})
	if err != nil {
		return nil, fmt.Errorf("swapout: %w", err)
	}
	row.SwapOutPause = ssnap.Report.PauseTotal()
	row.SwapOutCapture = ssnap.Report.Capture
	row.SwapOutTotal = row.SwapOutPause + row.SwapOutCapture

	if _, err := core.Swapin(ssnap, 2, core.RestoreOptions{}); err != nil {
		return nil, fmt.Errorf("swapin: %w", err)
	}
	row.SwapInRestore = ssnap.Report.RestoreTotal()
	row.SwapInResume = ssnap.Report.Resume
	row.SwapInTotal = row.SwapInRestore + row.SwapInResume

	host2.Terminate()
	return row, nil
}

// Render prints all six sub-figures.
func (r *Fig10Result) Render() string {
	a := trace.New("Fig 10(a): Checkpoint time breakdown",
		"Benchmark", "Pause", "Snapshot+Write (host)", "Snapshot+Write (device)", "Total")
	aChart := trace.NewBarChart("", "s", "pause", "host capture", "device capture")
	for _, row := range r.Rows {
		a.Row(row.Code, trace.Seconds(row.Pause), trace.Seconds(row.HostCapture),
			trace.Seconds(row.DevCapture), trace.Seconds(row.CkptTotal))
		aChart.Bar(row.Code, []float64{
			row.Pause.Seconds(), row.HostCapture.Seconds(), row.DevCapture.Seconds(),
		}, "")
	}
	b := trace.New("Fig 10(b): Checkpoint file sizes",
		"Benchmark", "Host snapshot", "Device snapshot", "Local store", "Total")
	for _, row := range r.Rows {
		b.Row(row.Code, trace.Bytes(row.HostBytes), trace.Bytes(row.DevBytes),
			trace.Bytes(row.LocalStoreBytes), trace.Bytes(row.HostBytes+row.DevBytes+row.LocalStoreBytes))
	}
	c := trace.New("Fig 10(c): Restart time breakdown",
		"Benchmark", "Host restart", "Local-store copy", "Device restore", "Total")
	for _, row := range r.Rows {
		c.Row(row.Code, trace.Seconds(row.HostRestore), trace.Seconds(row.LocalCopy),
			trace.Seconds(row.DevRestore), trace.Seconds(row.RestartTotal))
	}
	d := trace.New("Fig 10(d): Process migration time",
		"Benchmark", "Pause (incl. direct local-store copy)", "Capture", "Restore", "Total")
	for _, row := range r.Rows {
		d.Row(row.Code, trace.Seconds(row.MigPause), trace.Seconds(row.MigCapture),
			trace.Seconds(row.MigRestore), trace.Seconds(row.MigTotal))
	}
	e := trace.New("Fig 10(e): Swap-out time",
		"Benchmark", "Pause", "Capture", "Total")
	for _, row := range r.Rows {
		e.Row(row.Code, trace.Seconds(row.SwapOutPause), trace.Seconds(row.SwapOutCapture),
			trace.Seconds(row.SwapOutTotal))
	}
	f := trace.New("Fig 10(f): Swap-in time",
		"Benchmark", "Restore", "Resume", "Total")
	for _, row := range r.Rows {
		f.Row(row.Code, trace.Seconds(row.SwapInRestore), trace.Millis(row.SwapInResume),
			trace.Seconds(row.SwapInTotal))
	}
	return a.String() + aChart.String() + "\n" + b.String() + "\n" + c.String() + "\n" +
		d.String() + "\n" + e.String() + "\n" + f.String()
}

// CheckShape verifies the paper's qualitative structure: SS and SG have
// the largest local stores, hence the longest pauses and migrations; MC is
// the lightest and fastest to migrate; checkpoint sizes span the paper's
// range; migration cost correlates with local store plus snapshot size.
func (r *Fig10Result) CheckShape() error {
	byCode := map[string]Fig10Row{}
	for _, row := range r.Rows {
		byCode[row.Code] = row
	}
	ss, sg, mc := byCode["SS"], byCode["SG"], byCode["MC"]

	for code, row := range byCode {
		if code == "SS" || code == "SG" {
			continue
		}
		if row.Pause >= ss.Pause || row.Pause >= sg.Pause {
			return fmt.Errorf("fig10 %s pause (%v) should be below SS (%v) and SG (%v): their local stores dominate",
				code, row.Pause, ss.Pause, sg.Pause)
		}
		if row.HostBytes >= ss.HostBytes {
			return fmt.Errorf("fig10 %s host snapshot (%d) should be below SS's (%d)", code, row.HostBytes, ss.HostBytes)
		}
	}
	for code, row := range byCode {
		if code == "MC" {
			continue
		}
		if row.MigTotal <= mc.MigTotal {
			return fmt.Errorf("fig10: MC should migrate fastest, but %s (%v) beats it (%v)", code, row.MigTotal, mc.MigTotal)
		}
	}
	// SS and SG: local store larger than the device snapshot (the paper's
	// explanation for their long pauses and short captures).
	for _, row := range []Fig10Row{ss, sg} {
		if row.LocalStoreBytes <= row.DevBytes {
			return fmt.Errorf("fig10 %s: local store (%d) should exceed device snapshot (%d)", row.Code, row.LocalStoreBytes, row.DevBytes)
		}
	}
	// Totals positive and ordered sanely everywhere.
	for code, row := range byCode {
		if row.CkptTotal <= 0 || row.RestartTotal <= 0 || row.MigTotal <= 0 ||
			row.SwapOutTotal <= 0 || row.SwapInTotal <= 0 {
			return fmt.Errorf("fig10 %s: non-positive totals", code)
		}
		if row.SwapOutTotal >= row.MigTotal {
			return fmt.Errorf("fig10 %s: swap-out (%v) should cost less than full migration (%v)", code, row.SwapOutTotal, row.MigTotal)
		}
	}
	return nil
}
