// Package maporder is a golden fixture for the maporder analyzer: every
// line marked with a want comment must produce exactly one finding with
// the quoted substring, and a line ending in a bare nolint directive
// must produce the amended no-justification finding. See golden_test.go.
package maporder

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// direct: a serialization sink called straight from a map-range body.
func direct(w io.Writer, m map[string]int) {
	for k, v := range m { // want "iteration over a map calls fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// indirect: the loop body calls a helper that reaches the sink through
// the module call graph.
func indirect(w io.Writer, m map[string]int) {
	for k := range m { // want "reaches a serialization sink via"
		emit(w, k)
	}
}

func emit(w io.Writer, k string) {
	json.NewEncoder(w).Encode(k) //nolint:errcheck // fixture helper: only maporder runs here
}

// moduleSink: trace emission order is observable in the export, so a
// map-ordered Emit sequence breaks seed-replay-identical traces.
func moduleSink(tr *obs.Tracer, m map[string]int64) {
	tk := tr.Track("host", "app")
	for k, v := range m { // want "iteration over a map calls Track.Emit"
		tk.Emit(0, k, 0, simclock.Duration(v), nil)
	}
}

// tainted: a slice appended to in map order inherits the taint; ranging
// over it later is just the map iteration with extra steps.
func tainted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys { // want "slice built in map-iteration order"
		fmt.Fprintln(w, k)
	}
}

// taintedArg: the tainted slice rides into a helper that serializes it.
func taintedArg(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	writeAll(w, keys) // want "a slice built in map-iteration order"
}

func writeAll(w io.Writer, keys []string) {
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// sorted: an intervening sort cleanses the taint — the canonical fix.
func sorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// counting: order-insensitive effects inside a map range are fine.
func counting(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressed(w io.Writer, m map[string]int) {
	for k := range m { //nolint:maporder // golden fixture: a justified directive suppresses the finding
		fmt.Fprintln(w, k)
	}
}

// A directive with no justification must NOT suppress: the finding is
// reported with a message explaining what a directive needs.
func bareDirective(w io.Writer, m map[string]int) {
	for k := range m { //nolint:maporder
		fmt.Fprintln(w, k)
	}
}
