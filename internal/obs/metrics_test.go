package obs

import (
	"strings"
	"testing"
)

// TestExposeFormat pins the Prometheus text exposition: HELP/TYPE
// headers, families sorted by name, series sorted by label string,
// histograms as cumulative buckets with +Inf, quantile estimates,
// sum, and count.
func TestExposeFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_ops_total", "Operations.", L("op", "pause")).Add(3)
	r.Counter("zz_ops_total", "Operations.", L("op", "capture")).Inc()
	r.Gauge("aa_active", "Active things.").Set(2)
	h := r.Histogram("mm_chunk_bytes", "Chunk sizes.", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	want := `# HELP aa_active Active things.
# TYPE aa_active gauge
aa_active 2

# HELP mm_chunk_bytes Chunk sizes.
# TYPE mm_chunk_bytes histogram
mm_chunk_bytes_bucket{le="10"} 1
mm_chunk_bytes_bucket{le="100"} 2
mm_chunk_bytes_bucket{le="+Inf"} 3
mm_chunk_bytes_quantile{quantile="0.5"} 55
mm_chunk_bytes_quantile{quantile="0.9"} 100
mm_chunk_bytes_quantile{quantile="0.99"} 100
mm_chunk_bytes_sum 555
mm_chunk_bytes_count 3

# HELP zz_ops_total Operations.
# TYPE zz_ops_total counter
zz_ops_total{op="capture"} 1
zz_ops_total{op="pause"} 3

`
	if got := r.Expose(); got != want {
		t.Errorf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramQuantile pins the bucket-interpolation estimator: the
// lowest bucket anchors at 0, interior quantiles interpolate linearly
// within their covering bucket, and the +Inf bucket clamps to the
// highest finite bound.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_bytes", "Q.", []int64{100, 1000})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", got)
	}
	for i := 0; i < 8; i++ {
		h.Observe(50) // 8 observations in (0, 100]
	}
	h.Observe(400)  // 1 in (100, 1000]
	h.Observe(5000) // 1 in (1000, +Inf]
	// p50: rank 5 of 10 lands in the first bucket → 0 + 100*(5/8) = 62.5 → 63.
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	// p90: rank 9 lands in the (100, 1000] bucket → 100 + 900*(1/1) = 1000.
	if got := h.Quantile(0.9); got != 1000 {
		t.Errorf("p90 = %d, want 1000", got)
	}
	// p99: rank 9.9 lands in +Inf → clamp to the highest finite bound.
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %d, want 0", got)
	}
}

// TestExposeRoundTrip re-parses the exposition and checks every series
// line carries the value the registry holds — the property the
// Snapify-IO metrics-dump control message relies on.
func TestExposeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("bytes_total", "Bytes.", L("node", "mic0"), L("mode", "write")).Add(12345)
	r.Gauge("streams", "Streams.", L("node", "mic0")).Set(4)

	values := make(map[string]string)
	for _, line := range strings.Split(r.Expose(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed exposition line %q", line)
		}
		values[name] = value
	}
	if got := values[`bytes_total{mode="write",node="mic0"}`]; got != "12345" {
		t.Errorf("counter round-trip got %q, want 12345", got)
	}
	if got := values[`streams{node="mic0"}`]; got != "4" {
		t.Errorf("gauge round-trip got %q, want 4", got)
	}
}

// TestRegistryIdempotent: the same (name, labels) always returns the same
// instance, regardless of label order.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "C.", L("x", "1"), L("y", "2"))
	b := r.Counter("c_total", "C.", L("y", "2"), L("x", "1"))
	if a != b {
		t.Error("label order changed the series identity")
	}
	h1 := r.Histogram("h_bytes", "H.", []int64{1, 2})
	h2 := r.Histogram("h_bytes", "H.", []int64{9, 9, 9}) // bounds fixed at creation
	if h1 != h2 {
		t.Error("histogram lookup is not idempotent")
	}
}

// TestCollectorsRunAtExpose: pull-based collectors publish point-in-time
// gauges when (and only when) Expose runs.
func TestCollectorsRunAtExpose(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.RegisterCollector(func(r *Registry) {
		calls++
		r.Gauge("pulled", "Pulled.").Set(int64(calls))
	})
	if calls != 0 {
		t.Fatal("collector ran before Expose")
	}
	if out := r.Expose(); !strings.Contains(out, "pulled 1\n") {
		t.Errorf("first exposition missing collected gauge:\n%s", out)
	}
	if out := r.Expose(); !strings.Contains(out, "pulled 2\n") {
		t.Errorf("collector did not run again on second Expose:\n%s", out)
	}
}

// TestNilRegistryIsNoOp pins the nil-safety contract: every method on a
// nil registry (and the nil metrics it hands out) is a no-op, so
// instrumented code never guards.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h", "H.", []int64{1})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics accumulated values")
	}
	r.RegisterCollector(func(*Registry) { t.Error("collector ran on nil registry") })
	if got := r.Expose(); got != "" {
		t.Errorf("nil registry exposed %q", got)
	}
}

// TestCounterRejectsNegative: counters are monotone; negative deltas are
// dropped rather than corrupting the series.
func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "M.")
	c.Add(10)
	c.Add(-5)
	if c.Value() != 10 {
		t.Errorf("counter moved backwards: %d", c.Value())
	}
}
