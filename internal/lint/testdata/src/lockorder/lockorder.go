// Package lockorder is a golden fixture for the lockorder analyzer:
// every line marked with a want comment must produce exactly one finding
// with the quoted substring. Each cycle is reported once, anchored at
// its lexically first witness site. See golden_test.go.
package lockorder

import "sync"

// A and B are locked in both orders by the two functions below: a
// two-node cycle, the textbook deadlock shape.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "mutex acquisition-order cycle among {A.mu, B.mu}"
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// C and D cycle only through the call graph: neither function locks both
// mutexes lexically, but each calls a helper that acquires the other.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func (c *C) withD(d *D) {
	c.mu.Lock()
	lockD(d) // want "mutex acquisition-order cycle among {C.mu, D.mu}"
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func (d *D) withC(c *C) {
	d.mu.Lock()
	lockC(c)
	d.mu.Unlock()
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

// gate is double-locked in one function: a lexical self-edge, the
// self-deadlock sync.Mutex does not forgive.
var gate sync.Mutex

func doubleLock() {
	gate.Lock()
	gate.Lock() // want "mutex acquisition-order cycle among {lockorder.gate}"
	gate.Unlock()
	gate.Unlock()
}

// E and F are always acquired in the same order — edges but no cycle,
// and RLock counts like Lock for ordering purposes.
type E struct{ mu sync.Mutex }

type F struct{ mu sync.RWMutex }

func readEF(e *E, f *F) {
	e.mu.Lock()
	f.mu.RLock()
	f.mu.RUnlock()
	e.mu.Unlock()
}

func writeEF(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}
