package mpi

import (
	"encoding/binary"
	"fmt"

	"snapify/internal/simclock"
)

// Additional collectives the multi-zone drivers and user applications need
// beyond Barrier and AllreduceSum. All are implemented over the
// point-to-point layer (rank 0 as the root of a star, the shape the small
// 4-node cluster of the paper's experiments would use), so their traffic is
// visible to the channel-drain invariant like any other message.

// collTagBase keeps collective traffic off user tags.
const collTagBase = 1 << 20

// Bcast distributes root's data to every rank; each rank returns the
// payload. All ranks must call it.
func (r *Rank) Bcast(root int, data []byte) ([]byte, error) {
	if root < 0 || root >= len(r.world.ranks) {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	if r.ID == root {
		for i := range r.world.ranks {
			if i == root {
				continue
			}
			if err := r.Send(i, collTagBase, data); err != nil {
				return nil, err
			}
		}
		out := make([]byte, len(data))
		copy(out, data)
		return out, nil
	}
	return r.Recv(root, collTagBase)
}

// Gather collects every rank's payload at root, ordered by rank; non-root
// ranks return nil. All ranks must call it.
func (r *Rank) Gather(root int, data []byte) ([][]byte, error) {
	if root < 0 || root >= len(r.world.ranks) {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	if r.ID != root {
		return nil, r.Send(root, collTagBase+1, data)
	}
	out := make([][]byte, len(r.world.ranks))
	out[root] = append([]byte(nil), data...)
	for i := range r.world.ranks {
		if i == root {
			continue
		}
		msg, err := r.Recv(i, collTagBase+1)
		if err != nil {
			return nil, err
		}
		out[i] = msg
	}
	return out, nil
}

// AllreduceMax returns the maximum of each rank's contribution on every
// rank, via gather-at-0 plus broadcast.
func (r *Rank) AllreduceMax(v uint64) (uint64, error) {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, v)
	all, err := r.Gather(0, buf)
	if err != nil {
		return 0, err
	}
	if r.ID == 0 {
		var mx uint64
		for _, b := range all {
			if got := binary.BigEndian.Uint64(b); got > mx {
				mx = got
			}
		}
		binary.BigEndian.PutUint64(buf, mx)
	}
	out, err := r.Bcast(0, buf)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(out), nil
}

// TimelineSkew returns the spread between the fastest and slowest rank's
// virtual clocks — a load-imbalance gauge for the MZ drivers.
func (w *World) TimelineSkew() simclock.Duration {
	var min, max simclock.Duration
	for i, r := range w.ranks {
		t := r.TL.Now()
		if i == 0 || t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return max - min
}
