package lint

import (
	"go/ast"
	"go/types"
)

// PanicLib reports panic calls in library packages. A panic on a
// snapshot path unwinds through the daemon's protocol handlers and takes
// the whole simulated stack down instead of failing one request; library
// code returns errors and lets the host API decide. Package main (the
// cmd/ drivers and examples) is exempt — a top-level fatal there is the
// right call. Genuine programmer-error invariants (bounds checks that
// mirror built-in slice panics) may be acknowledged with
// //nolint:paniclib and a justification.
var PanicLib = &Analyzer{
	Name: "paniclib",
	Doc:  "library code returns errors; panic is reserved for package main and justified invariant checks",
	Run:  runPanicLib,
}

func runPanicLib(p *Pass) {
	if p.Pkg.Types != nil && p.Pkg.Types.Name() == "main" {
		return
	}
	info := p.Pkg.Info
	inspectFiles(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			p.Reportf(call.Pos(), "panic in library code: return an error instead")
		}
		return true
	})
}
