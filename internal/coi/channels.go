package coi

import (
	"errors"
	"fmt"
	"sync"

	"snapify/internal/obs"
	"snapify/internal/scif"
	"snapify/internal/simclock"
)

// The COI runtime maintains several client-server command channels between
// the host process and the offload process — commands, events, and logs
// (Section 4.1, case 3). Each server thread serves exactly one client and
// handles requests sequentially, which is the property Snapify's shutdown
// marker exploits: once the server acknowledges the marker, the channel is
// provably empty until resume.

// CommandChannelNames are the client-server channels every offload process
// carries.
var CommandChannelNames = []string{"command", "event", "log"}

// Wire opcodes on command channels.
const (
	cmdRequest     uint8 = 1
	cmdReply       uint8 = 2
	cmdShutdown    uint8 = 3 // Snapify's marker: no more commands until resume
	cmdShutdownAck uint8 = 4
)

// ErrChannelDown is returned when a command channel's connection is gone.
var ErrChannelDown = errors.New("coi: command channel disconnected")

// ClientChan is the host side of one command channel.
type ClientChan struct {
	name string

	// mu is the lock Snapify's pause acquires (case 3): while held by the
	// pause thread, application threads cannot send commands.
	mu sync.Mutex
	ep *scif.Endpoint
	tl *simclock.Timeline

	hooks    bool // Snapify instrumentation compiled in
	hookCost simclock.Duration

	reqCtr   *obs.Counter // commands sent (nil-safe no-op without obs)
	drainCtr *obs.Counter // shutdown markers drained
}

func newClientChan(name string, ep *scif.Endpoint, tl *simclock.Timeline, hooks bool, hookCost simclock.Duration, mx *obs.Registry) *ClientChan {
	l := obs.L("channel", name)
	return &ClientChan{
		name: name, ep: ep, tl: tl, hooks: hooks, hookCost: hookCost,
		reqCtr: mx.Counter("coi_channel_requests_total",
			"Commands sent on a COI command channel.", l),
		drainCtr: mx.Counter("coi_channel_drains_total",
			"Shutdown markers injected and acknowledged on a COI command channel (one per pause).", l),
	}
}

// Name returns the channel name.
func (c *ClientChan) Name() string { return c.name }

// Request sends one command and waits for the server's reply.
func (c *ClientChan) Request(payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqCtr.Inc()
	if c.hooks {
		c.tl.Advance(c.hookCost)
	}
	msg := append([]byte{cmdRequest}, payload...)
	d, err := c.ep.Send(msg) //nolint:mutexblock // intended (Section 4.1 case 3): the channel lock IS the pause lock; a request holds it across the round-trip
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrChannelDown, c.name, err)
	}
	c.tl.Advance(d)
	raw, rd, err := c.ep.Recv() //nolint:mutexblock // intended (Section 4.1 case 3): the reply completes inside the same critical region the pause will take
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrChannelDown, c.name, err)
	}
	c.tl.Advance(rd)
	if raw[0] != cmdReply {
		return nil, fmt.Errorf("coi: %s: unexpected opcode %d", c.name, raw[0])
	}
	return raw[1:], nil
}

// Ping sends a no-op command and waits for the reply — real traffic on the
// event and log channels, so the drain protocol has live channels to prove
// empty.
func (c *ClientChan) Ping() error {
	reply, err := c.Request([]byte{cmdPing})
	if err != nil {
		return err
	}
	if len(reply) == 0 || reply[0] != 0 {
		return fmt.Errorf("coi: %s: ping rejected", c.name)
	}
	return nil
}

// PauseLock acquires the channel lock on behalf of Snapify's pause and
// injects the shutdown marker; it returns once the server acknowledged,
// proving the channel drained. The lock stays held until ResumeUnlock.
func (c *ClientChan) PauseLock() (simclock.Duration, error) {
	c.mu.Lock() // released by ResumeUnlock
	var total simclock.Duration
	d, err := c.ep.Send([]byte{cmdShutdown}) //nolint:mutexblock // intended (Section 4.1): PauseLock drains the channel under the lock it keeps holding until resume
	if err != nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s: %v", ErrChannelDown, c.name, err)
	}
	total += d
	raw, rd, err := c.ep.Recv() //nolint:mutexblock // intended (Section 4.1): the drain acknowledgement must arrive while the channel is locked
	if err != nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %s: %v", ErrChannelDown, c.name, err)
	}
	total += rd
	if raw[0] != cmdShutdownAck {
		c.mu.Unlock()
		return 0, fmt.Errorf("coi: %s: expected shutdown ack, got opcode %d", c.name, raw[0])
	}
	c.drainCtr.Inc()
	return total, nil
}

// ResumeUnlock releases the pause lock (Section 4.2). If reconnected is
// non-nil the channel switches to the new endpoint first (restore path).
func (c *ClientChan) ResumeUnlock(reconnected *scif.Endpoint) {
	if reconnected != nil {
		c.ep = reconnected
	}
	c.mu.Unlock()
}

// Endpoint exposes the underlying endpoint for drain assertions in tests
// and in Snapify's consistency checks.
func (c *ClientChan) Endpoint() *scif.Endpoint { return c.ep }

// replaceEndpoint installs the post-restore endpoint. Only the rebind path
// calls it, while application threads are blocked on the pause lock.
func (c *ClientChan) replaceEndpoint(ep *scif.Endpoint) { c.ep = ep }

// serveCommandChannel is the device-side server thread: sequential service,
// one reply per request, shutdown markers acknowledged in order.
func serveCommandChannel(ep *scif.Endpoint, handle func(req []byte) []byte) {
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			return // connection torn down (swap-out, destroy)
		}
		switch raw[0] {
		case cmdRequest:
			reply := handle(raw[1:])
			if _, err := ep.Send(append([]byte{cmdReply}, reply...)); err != nil {
				return
			}
		case cmdShutdown:
			// Everything sent before the marker has been consumed; the
			// client holds its lock, so nothing follows until resume.
			if _, err := ep.Send([]byte{cmdShutdownAck}); err != nil {
				return
			}
		default:
			return
		}
	}
}
