package coi

import (
	"encoding/binary"
	"fmt"
	"sync"

	"snapify/internal/blcr"
	"snapify/internal/blob"
	"snapify/internal/fanout"
	"snapify/internal/obs"
	"snapify/internal/proc"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapifyio"
	"snapify/internal/snapstore"
	"snapify/internal/stream"
)

// This file holds the Snapify modifications to the COI daemon and the COI
// device runtime (Section 4): the pause/capture/resume/restore protocol
// between the host process, the daemon (the coordinator), and the offload
// process. The host-facing API lives in internal/core.

// ContextFileName is the offload process's BLCR context file inside a
// snapshot directory.
const ContextFileName = "context_offload"

// DeltaFileName is the incremental (delta) context file inside a snapshot
// directory — the incremental-checkpoint extension (see internal/blcr).
const DeltaFileName = "delta_offload"

// Capture modes carried in the capture request.
const (
	// CaptureFull is the paper's capture: a complete BLCR context.
	CaptureFull uint8 = iota
	// CaptureBase is a complete context that also marks every region
	// clean, anchoring a chain of delta captures.
	CaptureBase
	// CaptureDelta serializes only the ranges written since the last base
	// or delta capture.
	CaptureDelta
)

// LocalStorePrefix prefixes saved local-store files in a snapshot
// directory.
const LocalStorePrefix = "localstore_"

// Pipe opcodes between the daemon and the offload process's Snapify agent.
const (
	pipePauseReq uint8 = iota + 30
	pipePauseAck
	pipeDrainReq
	pipeDrainDone
	pipeCaptureReq
	pipeCaptureDone
	pipeResumeReq
	pipeResumeDone
)

// pauseState is one active pause request the daemon tracks (it keeps a
// list and removes entries as requests complete, Section 4.1).
type pauseState struct {
	id    int
	op    *OffloadProc
	pipe  *proc.PipeEnd // daemon end
	inbox chan []byte   // filled by the monitor thread; closed when the pipe dies
}

// addPauseState registers ps and starts its dedicated monitor thread: a
// forwarder that blocks on the pipe and routes agent messages to the
// waiting handler. It exits — closing the inbox so a blocked await fails
// instead of hanging — when the pipe closes, either from removePauseState
// or from the offload process's side going away. Blocking on Recv (rather
// than polling TryRecv on a wall-clock timer, as an earlier version did)
// keeps the daemon free of real-time dependencies.
func (d *Daemon) addPauseState(ps *pauseState) {
	d.monMu.Lock()
	d.activeReqs[ps.id] = ps
	d.monMu.Unlock()
	err := d.p.SpawnThread(fmt.Sprintf("snapify_monitor_%d", ps.id), func() {
		for {
			msg, _, err := ps.pipe.Recv()
			if err != nil {
				close(ps.inbox)
				return
			}
			ps.inbox <- msg
		}
	})
	if err != nil {
		// The daemon process is terminating: fail any await immediately.
		close(ps.inbox)
	}
}

func (d *Daemon) removePauseState(id int) {
	d.monMu.Lock()
	ps := d.activeReqs[id]
	delete(d.activeReqs, id)
	d.monMu.Unlock()
	if ps != nil {
		ps.pipe.Close() //nolint:errcheck // the agent-side monitor exits on the close; nothing to recover
	}
}

func (d *Daemon) pauseStateFor(id int) *pauseState {
	d.monMu.Lock()
	defer d.monMu.Unlock()
	return d.activeReqs[id]
}

// await blocks for the next agent message with the wanted opcode.
func (ps *pauseState) await(want uint8) ([]byte, error) {
	msg, ok := <-ps.inbox
	if !ok {
		return nil, fmt.Errorf("coi: snapify pipe closed awaiting opcode %d", want)
	}
	if msg[0] != want {
		return nil, fmt.Errorf("coi: snapify protocol error: got pipe opcode %d, want %d", msg[0], want)
	}
	return msg[1:], nil
}

// handleSnapifyPause is steps 1-3 of Fig 3: open the pipe, signal the
// offload process, collect its acknowledgement, and relay it to the host.
// Payload: procID u32.
func (d *Daemon) handleSnapifyPause(ep *scif.Endpoint, payload []byte) {
	id := int(u32(payload))
	op, err := d.Lookup(id)
	if err != nil {
		reply(ep, opSnapifyPauseResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	daemonEnd, procEnd := proc.NewPipe(d.plat.Model())
	op.mu.Lock()
	op.pipe = procEnd
	op.mu.Unlock()
	ps := &pauseState{id: id, op: op, pipe: daemonEnd, inbox: make(chan []byte, 8)}
	d.addPauseState(ps)

	if _, err := daemonEnd.Send([]byte{pipePauseReq}); err != nil {
		d.removePauseState(id)
		reply(ep, opSnapifyPauseResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	if err := op.p.Deliver(proc.SigSnapify); err != nil {
		d.removePauseState(id)
		reply(ep, opSnapifyPauseResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	if _, err := ps.await(pipePauseAck); err != nil {
		d.removePauseState(id)
		reply(ep, opSnapifyPauseResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	reply(ep, opSnapifyPauseResp, []byte{0})
}

// handleSnapifyDrain is step 4: forward the drain request (with the
// snapshot directory and the local-store target node) and wait for the
// agent to finish quiescing and saving its local store.
// Payload: procID u32 | alignNs u64 | lsTarget u32 | dirLen u32 | dir.
// Reply: 0 | saveDurNs u64 | localStoreBytes u64.
func (d *Daemon) handleSnapifyDrain(ep *scif.Endpoint, payload []byte) {
	id := int(u32(payload))
	align := simclock.Duration(u64(payload[4:]))
	ps := d.pauseStateFor(id)
	if ps == nil {
		reply(ep, opSnapifyDrainResp, append([]byte{1}, []byte("no active pause")...))
		return
	}
	if _, err := ps.pipe.Send(append([]byte{pipeDrainReq}, payload[4:]...)); err != nil {
		reply(ep, opSnapifyDrainResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	resp, err := ps.await(pipeDrainDone)
	if err != nil {
		reply(ep, opSnapifyDrainResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	if resp[0] != 0 {
		reply(ep, opSnapifyDrainResp, append([]byte{1}, resp[1:]...))
		return
	}
	// The daemon coordinates the drain for its whole duration.
	d.coidTrack().Emit(0, "drain_coordination", align, simclock.Duration(u64(resp[1:])), nil)
	reply(ep, opSnapifyDrainResp, append([]byte{0}, resp[1:]...))
}

// coidTrack is the COI daemon's lane in the trace, one per card.
func (d *Daemon) coidTrack() *obs.Track {
	return d.plat.Obs.TracerOf().Track(d.dev.Node.String(), "coid")
}

// handleSnapifyCapture forwards the capture request and waits for the
// checkpoint to finish. Payload: procID u32 | terminate u8 | mode u8 |
// streams u16 | chunkBytes u64 | alignNs u64 | dirLen u32 | dir. Reply:
// 0 | snapshotBytes u64 | captureDurNs u64 | scope u64. The scope keys
// the per-stream capture spans the shard workers emitted; the host
// derives its Report from them (durNs is the fallback when the platform
// runs without observability).
func (d *Daemon) handleSnapifyCapture(ep *scif.Endpoint, payload []byte) {
	id := int(u32(payload))
	terminate := payload[4] == 1
	align := simclock.Duration(u64(payload[16:]))
	ps := d.pauseStateFor(id)
	if ps == nil {
		reply(ep, opSnapifyCaptureResp, append([]byte{1}, []byte("no active pause")...))
		return
	}
	if _, err := ps.pipe.Send(append([]byte{pipeCaptureReq}, payload[4:]...)); err != nil {
		reply(ep, opSnapifyCaptureResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	resp, err := ps.await(pipeCaptureDone)
	if err != nil {
		reply(ep, opSnapifyCaptureResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	if resp[0] != 0 {
		reply(ep, opSnapifyCaptureResp, append([]byte{1}, resp[1:]...))
		return
	}
	if terminate {
		// The exit is announced: the daemon must not treat it as a crash
		// (Section 3, "Dealing with distributed states").
		ps.op.p.AnnounceExit()
		ps.op.teardown()
		d.removePauseState(id)
	}
	d.coidTrack().Emit(0, "capture_coordination", align, simclock.Duration(u64(resp[9:])), nil)
	reply(ep, opSnapifyCaptureResp, append([]byte{0}, resp[1:]...))
}

// handleSnapifyResume forwards the resume and closes out the pause state.
// Payload: procID u32.
func (d *Daemon) handleSnapifyResume(ep *scif.Endpoint, payload []byte) {
	id := int(u32(payload))
	ps := d.pauseStateFor(id)
	if ps == nil {
		reply(ep, opSnapifyResumeResp, append([]byte{1}, []byte("no active pause")...))
		return
	}
	if _, err := ps.pipe.Send([]byte{pipeResumeReq}); err != nil {
		reply(ep, opSnapifyResumeResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	if _, err := ps.await(pipeResumeDone); err != nil {
		reply(ep, opSnapifyResumeResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	d.removePauseState(id)
	reply(ep, opSnapifyResumeResp, []byte{0})
}

// handleSnapifyRestore rebuilds an offload process from a snapshot
// directory. Payload: binNameLen u32 | binName | ctxDirLen u32 | ctxDir |
// lsNode u32 | lsDirLen u32 | lsDir | deltaCount u32 | (dirLen u32 |
// dir)* | streams u16 | chunkBytes u64 | alignNs u64. The context comes from ctxDir
// (the base checkpoint); the saved local store from lsDir on lsNode (the
// latest pause — the host for checkpoint and swap, the daemon's own card
// for migration); delta contexts, if any, are replayed in order (the
// incremental extension). streams > 1 restores the base context over that
// many concurrent Snapify-IO range streams.
// Reply: 0 | newID u32 | restoreDurNs u64 | lsCopyDurNs u64 | lsBytes u64
// | #channels u32 | ports...
func (d *Daemon) handleSnapifyRestore(ep *scif.Endpoint, payload []byte) {
	fail := func(err error) { reply(ep, opSnapifyRestoreResp, append([]byte{1}, []byte(err.Error())...)) }

	binLen := u32(payload)
	binName := string(payload[4 : 4+binLen])
	payload = payload[4+binLen:]
	dirLen := u32(payload)
	dir := string(payload[4 : 4+dirLen])
	payload = payload[4+dirLen:]
	lsNode := simnet.NodeID(u32(payload))
	payload = payload[4:]
	lsDirLen := u32(payload)
	lsDir := string(payload[4 : 4+lsDirLen])
	payload = payload[4+lsDirLen:]
	deltaCount := int(u32(payload))
	payload = payload[4:]
	deltaDirs := make([]string, 0, deltaCount)
	for i := 0; i < deltaCount; i++ {
		n := u32(payload)
		deltaDirs = append(deltaDirs, string(payload[4:4+n]))
		payload = payload[4+n:]
	}
	streams := int(u16(payload))
	chunk := int64(u64(payload[2:]))
	align := simclock.Duration(u64(payload[10:]))
	rp := blcr.RetryPolicy{
		MaxAttempts: int(u16(payload[18:])),
		Backoff:     simclock.Duration(u64(payload[20:])),
	}

	bin, err := LookupBinary(binName)
	if err != nil {
		fail(err)
		return
	}

	d.mu.Lock()
	newID := d.nextID
	d.nextID++
	d.mu.Unlock()

	spawn := func(img *blcr.Image) (*proc.Process, error) {
		return d.plat.Procs.Spawn(img.Name, d.dev.Node, d.dev.Mem), nil
	}
	// Restore workers emit spans under a fresh scope, aligned to the
	// host's virtual clock carried in the request.
	tracer := d.plat.Obs.TracerOf()
	scope := tracer.NewScope()
	cr := d.plat.CR.WithSpans(tracer, scope, align).WithRetry(rp)
	ctxPath := dir + "/" + ContextFileName
	var restored *proc.Process
	var rst *blcr.Stats
	adopted := false
	if len(deltaDirs) == 0 && d.staging.Has(ctxPath) {
		// Live migration switch-over: the pre-copy rounds already parked
		// this context's chunks on the card, so the restore adopts them
		// in place — installing page tables over resident frames instead
		// of streaming the image from the host. Any failure falls through
		// to the streaming path, which is byte-identical.
		restored, rst, adopted = d.tryAdoptedRestart(cr, ctxPath, spawn)
	}
	if !adopted {
		// BLCR reads the context "on the fly" from host storage via a
		// Snapify-IO read descriptor (Section 4.3).
		src, err := d.plat.IO.Open(d.dev.Node, simnet.HostNode, ctxPath, snapifyio.Read)
		if err != nil {
			fail(err)
			return
		}
		deltas := make([]stream.Source, 0, len(deltaDirs))
		for _, dd := range deltaDirs {
			ds, err := d.plat.IO.Open(d.dev.Node, simnet.HostNode, dd+"/"+DeltaFileName, snapifyio.Read)
			if err != nil {
				src.Close() //nolint:errcheck // error path: close only releases the descriptor; the size mismatch is the reported error
				fail(err)
				return
			}
			deltas = append(deltas, ds)
		}
		if streams > 1 || rp.Enabled() {
			// Parallel restore: the plain descriptor only supplies the context
			// size; the pages arrive over striped range streams, each
			// prefetching on its own slots. A retry-enabled restore rides this
			// path even with one stream — range reads are idempotent, so a
			// faulted source reopens at its current offset and continues.
			if streams < 1 {
				streams = 1
			}
			size := src.Size()
			src.Close() //nolint:errcheck // size probe: close only releases the descriptor
			open := func(off, n int64) (stream.Source, error) {
				return d.plat.IO.OpenStream(d.dev.Node, simnet.HostNode, ctxPath, snapifyio.Read, snapifyio.OpenOptions{
					Slots:  2,
					Stripe: snapifyio.Stripe{Offset: off, Length: n},
				})
			}
			restored, rst, err = cr.RestartChainParallel(size, streams, chunk, open, deltas, spawn)
		} else {
			restored, rst, err = cr.RestartChain(src, deltas, spawn)
			src.Close() //nolint:errcheck // read side at EOF: close only releases the descriptor
		}
		for _, ds := range deltas {
			ds.Close() //nolint:errcheck // restore already failed; close only releases the descriptor
		}
		if err != nil {
			fail(fmt.Errorf("restoring offload process: %w", err))
			return
		}
	}

	// Copy the local store back on the fly into the mapped regions.
	lsDur, lsBytes, err := d.reloadLocalStore(restored, lsDir, lsNode, streams)
	if err != nil {
		restored.Terminate()
		fail(err)
		return
	}

	op, err := rebuildOffloadProc(d, bin, newID, restored)
	if err != nil {
		restored.Terminate()
		fail(err)
		return
	}

	// Set up the Snapify pipe so the host's upcoming resume reaches the
	// restored process; it stays quiesced until then (Section 4.3).
	daemonEnd, procEnd := proc.NewPipe(d.plat.Model())
	op.mu.Lock()
	op.pipe = procEnd
	op.mu.Unlock()
	ps := &pauseState{id: newID, op: op, pipe: daemonEnd, inbox: make(chan []byte, 8)}
	d.addPauseState(ps)
	op.p.Deliver(proc.SigSnapify) //nolint:errcheck // handler installed by rebuildOffloadProc

	tk := d.coidTrack()
	tk.AlignTo(align)
	ctxArgs := map[string]int64{"bytes": rst.Bytes}
	if adopted {
		ctxArgs["adopted"] = 1
	}
	tk.Emit(scope, "restore_context", align, rst.Duration, ctxArgs)
	tk.Emit(scope, "reload_local_store", align+rst.Duration, lsDur, map[string]int64{"bytes": lsBytes})

	resp := []byte{0}
	resp = appendU32(resp, uint32(newID))
	resp = binary.BigEndian.AppendUint64(resp, uint64(rst.Duration))
	resp = binary.BigEndian.AppendUint64(resp, uint64(lsDur))
	resp = binary.BigEndian.AppendUint64(resp, uint64(lsBytes))
	ports := op.ChannelPorts()
	resp = appendU32(resp, uint32(len(ports)))
	for _, cp := range ports {
		resp = appendU32(resp, uint32(len(cp.name)))
		resp = append(resp, cp.name...)
		resp = appendU32(resp, uint32(cp.port))
	}
	reply(ep, opSnapifyRestoreResp, resp)
}

// reloadLocalStore streams saved local-store files from the snapshot
// directory (on lsNode) into the restored process's regions — serially
// through one shared pipeline for workers <= 1 (the paper's path), or one
// region per worker on a bounded pool. For process migration the files
// are already on this card — written there directly by the source card's
// pause — and are deleted once loaded.
func (d *Daemon) reloadLocalStore(p *proc.Process, dir string, lsNode simnet.NodeID, workers int) (simclock.Duration, int64, error) {
	var regions []*proc.Region
	for _, r := range p.Regions() {
		if r.Kind() == proc.RegionLocalStore {
			regions = append(regions, r)
		}
	}
	if workers <= 1 || len(regions) <= 1 {
		acc := simclock.NewPipelineAccum()
		var total int64
		for _, r := range regions {
			n, err := d.reloadOneLocalStore(r, dir, lsNode, acc)
			if err != nil {
				return 0, 0, err
			}
			total += n
		}
		return acc.Total(), total, nil
	}
	durs := make([]simclock.Duration, len(regions))
	bytes := make([]int64, len(regions))
	err := fanout.Run(workers, len(regions), func(i int) error {
		acc := simclock.NewPipelineAccum()
		n, err := d.reloadOneLocalStore(regions[i], dir, lsNode, acc)
		durs[i] = acc.Total()
		bytes[i] = n
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	var total int64
	var wall simclock.Duration
	for i := range regions {
		total += bytes[i]
		if durs[i] > wall {
			wall = durs[i]
		}
	}
	return wall, total, nil
}

// reloadOneLocalStore streams one saved local-store file into its region,
// observing costs on acc.
func (d *Daemon) reloadOneLocalStore(r *proc.Region, dir string, lsNode simnet.NodeID, acc *simclock.PipelineAccum) (int64, error) {
	f, err := d.plat.IO.Open(d.dev.Node, lsNode, dir+"/"+LocalStorePrefix+r.Name(), snapifyio.Read)
	if err != nil {
		return 0, fmt.Errorf("coi: local store for %q: %w", r.Name(), err)
	}
	if f.Size() != r.Size() {
		f.Close() //nolint:errcheck // read side at EOF: close only releases the descriptor
		return 0, fmt.Errorf("coi: local store for %q is %d bytes, region is %d", r.Name(), f.Size(), r.Size())
	}
	var off int64
	for off < r.Size() {
		chunk, cost, err := f.Next(4 * simclock.MiB)
		if err != nil {
			f.Close() //nolint:errcheck // error path: close only releases the descriptor; the read error is what propagates
			return 0, err
		}
		stream.Observe(acc, cost, d.plat.Model().PhiMemcpy(chunk.Len()))
		r.WriteBlob(off, chunk)
		off += chunk.Len()
	}
	f.Close() //nolint:errcheck // read side at EOF: close only releases the descriptor
	if lsNode == d.dev.Node {
		d.dev.FS.Remove(dir + "/" + LocalStorePrefix + r.Name()) //nolint:errcheck // migration scratch: the local store is already loaded into the regions
	}
	return off, nil
}

// rebuildOffloadProc wraps a restored process in a fresh runtime: channels
// listen on new ports, the signal handler is reinstalled, and the daemon's
// bookkeeping (crash watch, cleanup) is re-established.
func rebuildOffloadProc(d *Daemon, bin *Binary, id int, p *proc.Process) (*OffloadProc, error) {
	op := &OffloadProc{
		d:         d,
		p:         p,
		bin:       bin,
		id:        id,
		cmdEPs:    make(map[string]*scif.Endpoint),
		pipelines: make(map[uint32]*devicePipeline),
		buffers:   make(map[int]*deviceBuffer),
	}
	op.pipeCond = sync.NewCond(&op.mu)
	if err := op.listenChannels(); err != nil {
		p.Terminate()
		return nil, err
	}
	op.installSnapifyHandler()
	d.mu.Lock()
	d.procs[id] = op
	d.mu.Unlock()
	p.OnExit(func(_ *proc.Process, expected bool) {
		d.mu.Lock()
		delete(d.procs, id)
		if !expected {
			d.crashed[id] = true
		}
		d.mu.Unlock()
		d.dev.FS.RemoveAll(fmt.Sprintf("/tmp/coi_procs/%d/", id))
	})
	return op, nil
}

// installSnapifyHandler installs the SigSnapify handler that runs the
// device-side agent loop.
func (op *OffloadProc) installSnapifyHandler() {
	op.p.HandleSignal(proc.SigSnapify, func() { op.snapifyAgent() })
}

// snapifyAgent is the offload process's side of the protocol: it reads
// requests from the pipe the daemon opened and services them until resume
// or termination. It runs in signal-handler context (its own goroutine).
func (op *OffloadProc) snapifyAgent() {
	op.mu.Lock()
	pipe := op.pipe
	op.mu.Unlock()
	if pipe == nil {
		return
	}
	drained := false // whether this agent holds the quiesce locks
	for {
		raw, _, err := pipe.Recv()
		if err != nil {
			// Pipe closed: the operation is over (resume handled, or the
			// process is going away). Locks are released on the paths
			// that close the pipe.
			return
		}
		switch raw[0] {
		case pipePauseReq:
			pipe.Send([]byte{pipePauseAck}) //nolint:errcheck // fire-and-forget reply: the daemon sees a dead agent on its monitor Recv

		case pipeDrainReq:
			align := simclock.Duration(u64(raw[1:]))
			lsTarget := simnet.NodeID(u32(raw[9:]))
			dirLen := u32(raw[13:])
			dir := string(raw[17 : 17+dirLen])
			// Quiesce: running steps drain at the gate; the result-send
			// critical region is held so case-4 channels stay empty.
			op.p.PauseSteps()
			op.resultMu.Lock()
			drained = true
			quiesce := simclock.Duration(op.p.ThreadCount()) * op.d.plat.Model().ThreadQuiesce
			d, bytes, err := op.SaveLocalStore(lsTarget, dir)
			if err != nil {
				pipe.Send(append([]byte{pipeDrainDone, 1}, []byte(err.Error())...)) //nolint:errcheck // fire-and-forget reply: the daemon sees a dead agent on its monitor Recv
				continue
			}
			// The request carries the host's virtual clock so the agent's
			// spans land on the shared timeline (trace only; the reported
			// durations are what the host folds into its Report).
			tk := op.agentTrack()
			tk.AlignTo(align)
			tk.Emit(0, "quiesce", align, quiesce, nil)
			tk.Emit(0, "save_local_store", align+quiesce, d, map[string]int64{"bytes": bytes})
			d += quiesce
			resp := []byte{pipeDrainDone, 0}
			resp = binary.BigEndian.AppendUint64(resp, uint64(d))
			resp = binary.BigEndian.AppendUint64(resp, uint64(bytes))
			pipe.Send(resp) //nolint:errcheck // fire-and-forget reply: the daemon sees a dead agent on its monitor Recv

		case pipeCaptureReq:
			terminate := raw[1] == 1
			mode := raw[2]
			streams := int(u16(raw[3:]))
			chunk := int64(u64(raw[5:]))
			align := simclock.Duration(u64(raw[13:]))
			dirLen := u32(raw[21:])
			dir := string(raw[25 : 25+dirLen])
			rp := blcr.RetryPolicy{
				MaxAttempts: int(u16(raw[25+dirLen:])),
				Backoff:     simclock.Duration(u64(raw[27+dirLen:])),
			}
			// Dedup-aware captures (StoreOptions on the host side) carry
			// a store flag and the parent snapshot path after the retry
			// policy.
			storeOn := false
			parent := ""
			if base := 35 + int(dirLen); len(raw) > base {
				storeOn = raw[base] == 1
				pn := int(u32(raw[base+1:]))
				parent = string(raw[base+5 : base+5+pn])
			}
			// Every shard worker of this capture emits a span under one
			// fresh scope; the host derives its Report from those spans.
			tracer := op.d.plat.Obs.TracerOf()
			scope := tracer.NewScope()
			cr := op.d.plat.CR.WithSpans(tracer, scope, align).WithRetry(rp)
			var st *blcr.Stats
			var shipped int64
			var err error
			if storeOn {
				st, shipped, err = op.runCaptureStore(cr, mode, streams, chunk, dir, parent, align, scope)
			} else {
				st, err = op.runCapture(cr, mode, streams, chunk, dir)
				if st != nil {
					shipped = st.Bytes
				}
			}
			if err == nil && (mode == CaptureBase || mode == CaptureDelta) {
				for _, r := range op.p.Regions() {
					r.MarkClean()
				}
			}
			if err != nil {
				pipe.Send(append([]byte{pipeCaptureDone, 1}, []byte(err.Error())...)) //nolint:errcheck // fire-and-forget reply: the daemon sees a dead agent on its monitor Recv
				continue
			}
			resp := []byte{pipeCaptureDone, 0}
			resp = appendU64(resp, uint64(st.Bytes))
			resp = appendU64(resp, uint64(st.Duration))
			resp = appendU64(resp, scope)
			resp = appendU64(resp, uint64(shipped))
			pipe.Send(resp) //nolint:errcheck // fire-and-forget reply: the daemon sees a dead agent on its monitor Recv
			if terminate {
				// The daemon tears the process down; this agent thread
				// ends with it.
				return
			}

		case pipeResumeReq:
			if drained {
				op.resultMu.Unlock()
			}
			op.p.ResumeSteps()
			drained = false
			// An aborted live migration resumes here: its pre-copy digest
			// cache no longer tracks a continuous dirty history, so the
			// next capture must pay the full scan.
			op.mu.Lock()
			op.precopyDigests, op.precopyChunk = nil, 0
			op.mu.Unlock()
			// Re-enter an offload function that was in flight when the
			// snapshot was taken (Section 4.3): its progress is in the
			// control region and the data regions.
			st := op.readCtrl()
			if st.Active {
				op.p.SpawnThread("reentry", func() { //nolint:errcheck // re-entry on a process mid-teardown is moot; the capture already succeeded
					op.executeFunction(st.PipelineID, st.Seq, st.Func, st.Args)
				})
			}
			pipe.Send([]byte{pipeResumeDone}) //nolint:errcheck // fire-and-forget reply: the daemon sees a dead agent on its monitor Recv
			return
		}
	}
}

// runCapture serializes the frozen process into the snapshot directory on
// host storage: one Snapify-IO stream for streams <= 1 (the paper's data
// path, byte-for-byte), or streams striped Snapify-IO streams, each
// double-buffered and writing a disjoint range of the same context file,
// assembled by the host daemon. chunk is the I/O granularity for the
// parallel path (0 uses the checkpointer's default).
func (op *OffloadProc) runCapture(cr *blcr.Checkpointer, mode uint8, streams int, chunk int64, dir string) (*blcr.Stats, error) {
	name := ContextFileName
	if mode == CaptureDelta {
		name = DeltaFileName
	}
	path := dir + "/" + name
	rp := cr.Retry()
	if !rp.Enabled() {
		return op.captureOnce(cr, mode, streams, chunk, path)
	}
	// With retry enabled even a one-stream capture rides the striped path
	// (one worker writes a byte-identical file): only striped streams have
	// the ack watermark and detach semantics a resume needs. A shard-level
	// resume handles transport faults; the loop below redoes the whole
	// capture for crash-class failures, where the remote daemon lost
	// already-acknowledged stripes and every stream still closed cleanly —
	// which is why each pass ends with an end-to-end verification instead
	// of trusting the stream status.
	if streams < 1 {
		streams = 1
	}
	var backoffs simclock.Duration
	st, err := op.captureOnce(cr, mode, streams, chunk, path)
	for attempt := 1; ; attempt++ {
		if err == nil {
			verr := op.verifySnapshotFile(path, st.Bytes)
			if verr == nil {
				st.Duration += backoffs
				return st, nil
			}
			err = verr
		}
		// Drop whatever half-covered assembly this pass left behind, so a
		// redo starts clean and a final failure leaves no artifact.
		op.d.plat.IO.Discard(op.d.dev.Node, simnet.HostNode, path) //nolint:errcheck // best-effort cleanup; the capture error is what propagates
		if attempt >= rp.MaxAttempts {
			return nil, err
		}
		backoffs += rp.BackoffFor(attempt + 1)
		st, err = op.captureOnce(cr, mode, streams, chunk, path)
	}
}

// runCaptureStore is the dedup-aware capture path: instead of streaming
// every byte, the agent lays out the context file in memory (blcr.Layout),
// digests it chunk by chunk, negotiates a have/need set against the host's
// chunk store, and ships only the chunks the store lacks over store-mode
// striped streams. The committed manifest reassembles a byte-identical
// context file through the store's overlay file system, so restores (and
// the end-to-end verification below) use the ordinary read path. Returns
// the layout stats plus the bytes physically shipped — the dedup win is
// st.Bytes - shipped.
func (op *OffloadProc) runCaptureStore(cr *blcr.Checkpointer, mode uint8, streams int, chunk int64, dir, parent string, align simclock.Duration, scope uint64) (*blcr.Stats, int64, error) {
	name := ContextFileName
	if mode == CaptureDelta {
		name = DeltaFileName
	}
	path := dir + "/" + name
	if streams < 1 {
		streams = 1
	}
	if chunk <= 0 {
		chunk = blcr.PageChunk
	}
	var lay *blcr.Layout
	var err error
	if mode == CaptureDelta {
		lay, err = cr.LayoutDelta(op.p)
	} else {
		lay, err = cr.LayoutFull(op.p)
	}
	if err != nil {
		return nil, 0, err
	}
	size := lay.Size()
	img, digDur := lay.Materialize()
	digests := snapstore.ChunkDigests(img, chunk)
	if mode == CaptureFull {
		// Live migration's final capture: the pre-copy rounds digested
		// this image already, so the hardware dirty bits scope the final
		// pass to what changed since the last round — the digests still
		// come from the real materialized image, only the charged time
		// shrinks. Consumed here so a later unrelated capture pays full
		// price again.
		op.mu.Lock()
		prev, prevChunk := op.precopyDigests, op.precopyChunk
		op.precopyDigests, op.precopyChunk = nil, 0
		op.mu.Unlock()
		if prev != nil && prevChunk == chunk {
			dirty := precopyDirtyBytes(digests, prev, chunk, size)
			digDur = cr.RescanCost(op.p.Node().IsHost(), size, dirty)
		}
	}

	rp := cr.Retry()
	attempts := rp.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	tk := op.agentTrack()
	tk.AlignTo(align)

	st := lay.Stats()
	var shipped int64
	elapsed := digDur
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		passDur, passShipped, err := op.storePass(img, path, parent, size, chunk, streams, digests, align+elapsed, scope, tk, "capture_stream")
		shipped += passShipped
		elapsed += passDur
		if err == nil {
			if verr := op.verifySnapshotFile(path, size); verr == nil {
				st.Duration = elapsed
				return &st, shipped, nil
			} else {
				err = verr
			}
		}
		lastErr = err
		if attempt < attempts {
			elapsed += rp.BackoffFor(attempt + 1)
		}
	}
	// Give up: drop the pending upload so its pinned digests don't shield
	// orphaned chunks from GC. Chunks already shipped stay — they are
	// content-addressed and a later capture may reuse them.
	op.d.plat.IO.Discard(op.d.dev.Node, simnet.HostNode, path) //nolint:errcheck // best-effort cleanup; the capture error is what propagates
	return nil, 0, lastErr
}

// storePass runs one negotiate-then-ship round of a dedup-aware capture
// or pre-copy round. src is the materialized point-in-time image the
// digests describe — chunks ship from it, never from a live re-read, so
// a round taken while the process runs stays self-consistent. It
// returns the pass's virtual duration (negotiation round-trip plus the
// slowest stream) and the bytes shipped. The per-stream spans (named
// spanName) — the host's source of truth for the Report — are emitted
// only when the pass succeeds, so a retried pass doesn't pollute the
// scope.
func (op *OffloadProc) storePass(src blob.Blob, path, parent string, size, chunk int64, streams int, digests []string, at simclock.Duration, scope uint64, tk *obs.Track, spanName string) (simclock.Duration, int64, error) {
	need, committed, negDur, err := op.d.plat.IO.Negotiate(op.d.dev.Node, simnet.HostNode, path, parent, size, chunk, digests)
	tk.Emit(scope, "store_negotiate", at, negDur, map[string]int64{
		"chunks_total":  int64(len(digests)),
		"chunks_needed": int64(len(need)),
	})
	if err != nil {
		return negDur, 0, err
	}
	if committed {
		// Every chunk was already resident: the manifest committed during
		// the negotiation and not one data byte moves.
		return negDur, 0, nil
	}
	shipDur, shipped, err := op.shipChunks(src, path, size, chunk, streams, need, at+negDur, scope, spanName)
	return negDur + shipDur, shipped, err
}

// shipChunks ships the need set of a negotiated upload from the
// materialized image over store-mode striped streams, one contiguous
// group per stream.
func (op *OffloadProc) shipChunks(src blob.Blob, path string, size, chunk int64, streams int, need []int, at simclock.Duration, scope uint64, spanName string) (simclock.Duration, int64, error) {
	chunkLen := func(i int) int64 {
		n := size - int64(i)*chunk
		if n > chunk {
			n = chunk
		}
		return n
	}
	// Partition the need set into contiguous groups, one stream each.
	// Chunks are uniform except the last, so an even split by count is an
	// even split by bytes.
	if streams > len(need) {
		streams = len(need)
	}
	per := (len(need) + streams - 1) / streams
	var groups [][]int
	for i := 0; i < len(need); i += per {
		e := i + per
		if e > len(need) {
			e = len(need)
		}
		groups = append(groups, need[i:e])
	}
	durs := make([]simclock.Duration, len(groups))
	bytes := make([]int64, len(groups))
	ferr := fanout.Run(len(groups), len(groups), func(i int) error {
		g := groups[i]
		first := int64(g[0]) * chunk
		end := int64(g[len(g)-1])*chunk + chunkLen(g[len(g)-1])
		f, err := op.d.plat.IO.OpenStream(op.d.dev.Node, simnet.HostNode, path, snapifyio.Write, snapifyio.OpenOptions{
			Slots:  2,
			Stripe: snapifyio.Stripe{Offset: first, Length: end - first, Total: size},
			Store:  true,
		})
		if err != nil {
			return err
		}
		acc := simclock.NewPipelineAccum()
		for _, ci := range g {
			off := int64(ci) * chunk
			n := chunkLen(ci)
			cost, err := f.WriteBlobAt(off, src.Slice(off, n))
			if err != nil {
				f.Abort()
				return err
			}
			stream.Observe(acc, cost, op.d.plat.Model().PhiMemcpy(n))
			bytes[i] += n
		}
		if cost, err := f.Flush(); err != nil {
			f.Abort()
			return err
		} else {
			stream.Observe(acc, cost)
		}
		if err := f.Close(); err != nil {
			return err
		}
		durs[i] = acc.Total()
		return nil
	})
	var wall simclock.Duration
	var total int64
	for i := range groups {
		if durs[i] > wall {
			wall = durs[i]
		}
		total += bytes[i]
	}
	if ferr != nil {
		return wall, total, ferr
	}
	// Mirror the plain parallel capture's per-stream spans so the host's
	// deriveCapture (and the exported trace) treat both data paths alike.
	tracer := op.d.plat.Obs.TracerOf()
	for i := range groups {
		stk := tracer.Track(op.d.dev.Node.String(), fmt.Sprintf("%s/stream %d", op.p.Name(), i))
		stk.AlignTo(at)
		stk.Emit(scope, spanName, at, durs[i], map[string]int64{"bytes": bytes[i]})
	}
	return wall, total, nil
}

// precopyDirtyBytes sums the bytes of the chunks whose digest changed
// between two rounds' digest lists (an appeared or vanished tail counts
// as dirty).
func precopyDirtyBytes(cur, prev []string, chunk, size int64) int64 {
	var dirty int64
	for i, d := range cur {
		if i >= len(prev) || prev[i] != d {
			n := size - int64(i)*chunk
			if n > chunk {
				n = chunk
			}
			dirty += n
		}
	}
	return dirty
}

// --- live migration: pre-copy rounds and destination staging ---

// precopyResult is one pre-copy round's outcome, as reported to the host.
type precopyResult struct {
	dur          simclock.Duration
	imageBytes   int64
	dirtyBytes   int64
	shippedBytes int64
	chunksTotal  int
	chunksNeeded int
	skipped      bool
}

// handleSnapifyPrecopy runs one pre-copy round on the source card: digest
// the running process's image and ship the changed chunks to the host
// store while the process keeps mutating state. No pause is involved —
// the materialized image is the round's consistent cut.
// Payload: procID u32 | round u32 | alignNs u64 | scope u64 | chunkBytes
// u64 | streams u16 | shipFloorBytes u64 | dirLen u32 | dir.
// Reply: 0 | durNs u64 | imageBytes u64 | dirtyBytes u64 | shippedBytes
// u64 | chunksTotal u32 | chunksNeeded u32 | skipped u8.
func (d *Daemon) handleSnapifyPrecopy(ep *scif.Endpoint, payload []byte) {
	fail := func(err error) { reply(ep, opSnapifyPrecopyResp, append([]byte{1}, []byte(err.Error())...)) }
	id := int(u32(payload))
	round := int(u32(payload[4:]))
	align := simclock.Duration(u64(payload[8:]))
	scope := u64(payload[16:])
	chunk := int64(u64(payload[24:]))
	streams := int(u16(payload[32:]))
	shipFloor := int64(u64(payload[34:]))
	dirLen := u32(payload[42:])
	dir := string(payload[46 : 46+dirLen])

	op, err := d.Lookup(id)
	if err != nil {
		fail(err)
		return
	}
	res, err := op.runPrecopyRound(round, chunk, streams, shipFloor, dir, align, scope)
	if err != nil {
		fail(err)
		return
	}
	resp := []byte{0}
	resp = appendU64(resp, uint64(res.dur))
	resp = appendU64(resp, uint64(res.imageBytes))
	resp = appendU64(resp, uint64(res.dirtyBytes))
	resp = appendU64(resp, uint64(res.shippedBytes))
	resp = appendU32(resp, uint32(res.chunksTotal))
	resp = appendU32(resp, uint32(res.chunksNeeded))
	if res.skipped {
		resp = append(resp, 1)
	} else {
		resp = append(resp, 0)
	}
	reply(ep, opSnapifyPrecopyResp, resp)
}

// runPrecopyRound digests the running process and, unless the dirty set
// already fits under shipFloor, negotiates and ships the changed chunks
// into the host store's pending upload for the migration's context path.
// Round 1 pays the full materialize cost; later rounds are charged the
// dirty-bit-assisted rescan (PTE sweep + dirty pages only), while the
// digests always come from the genuinely materialized image so the shipped
// bytes stay byte-correct. The digest cache updates every round — skipped
// (probe) rounds included, since the hardware dirty bits reset at each
// scan regardless of whether anything ships.
func (op *OffloadProc) runPrecopyRound(round int, chunk int64, streams int, shipFloor int64, dir string, align simclock.Duration, scope uint64) (precopyResult, error) {
	if chunk <= 0 {
		chunk = blcr.PageChunk
	}
	if streams < 1 {
		streams = 1
	}
	cr := op.d.plat.CR
	lay, err := cr.LayoutFull(op.p)
	if err != nil {
		return precopyResult{}, err
	}
	size := lay.Size()
	img, digDur := lay.Materialize()
	digests := snapstore.ChunkDigests(img, chunk)

	op.mu.Lock()
	prev, prevChunk := op.precopyDigests, op.precopyChunk
	op.mu.Unlock()
	if round <= 1 {
		prev, prevChunk = nil, 0
	}
	dirty := size
	if prev != nil && prevChunk == chunk {
		dirty = precopyDirtyBytes(digests, prev, chunk, size)
		digDur = cr.RescanCost(op.p.Node().IsHost(), size, dirty)
	}
	op.mu.Lock()
	op.precopyDigests, op.precopyChunk = digests, chunk
	op.mu.Unlock()

	tk := op.agentTrack()
	tk.AlignTo(align)
	tk.Emit(scope, "precopy_digest", align, digDur, map[string]int64{
		"round":       int64(round),
		"dirty_bytes": dirty,
	})

	res := precopyResult{dur: digDur, imageBytes: size, dirtyBytes: dirty, chunksTotal: len(digests)}
	if dirty <= shipFloor {
		// Probe round: the delta is small enough to ship inside the
		// downtime budget, so leave it for the final (paused) capture.
		res.skipped = true
		return res, nil
	}
	path := dir + "/" + ContextFileName
	need, committed, negDur, err := op.d.plat.IO.Negotiate(op.d.dev.Node, simnet.HostNode, path, "", size, chunk, digests)
	tk.Emit(scope, "store_negotiate", align+digDur, negDur, map[string]int64{
		"chunks_total":  int64(len(digests)),
		"chunks_needed": int64(len(need)),
	})
	res.dur += negDur
	if err != nil {
		return res, err
	}
	res.chunksNeeded = len(need)
	if committed {
		return res, nil
	}
	shipDur, shipped, err := op.shipChunks(img, path, size, chunk, streams, need, align+digDur+negDur, scope, "precopy_stream")
	res.dur += shipDur
	res.shippedBytes = shipped
	return res, err
}

// handleSnapifyPrecopyStage is the destination card's side of a pre-copy
// round: pull the freshly shipped chunks out of the host store into the
// staging area (StageSync), or discard the staged state (StageDrop, on
// abort). Payload: mode u8 | alignNs u64 | scope u64 | pathLen u32 | path.
// Reply: 0 | durNs u64 | fetchedBytes u64 | stagedBytes u64.
func (d *Daemon) handleSnapifyPrecopyStage(ep *scif.Endpoint, payload []byte) {
	fail := func(err error) { reply(ep, opSnapifyPrecopyStageResp, append([]byte{1}, []byte(err.Error())...)) }
	mode := payload[0]
	align := simclock.Duration(u64(payload[1:]))
	scope := u64(payload[9:])
	pathLen := u32(payload[17:])
	path := string(payload[21 : 21+pathLen])

	if mode == StageDrop {
		d.staging.Drop(path)
		resp := []byte{0}
		resp = appendU64(resp, 0)
		resp = appendU64(resp, 0)
		resp = appendU64(resp, 0)
		reply(ep, opSnapifyPrecopyStageResp, resp)
		return
	}
	size, chunkBytes, digests, _, ok, planDur, err := d.plat.IO.StagePlan(d.dev.Node, simnet.HostNode, path)
	if err != nil {
		fail(err)
		return
	}
	if !ok {
		fail(fmt.Errorf("coi: stage sync: no digest plan for %s on the host store", path))
		return
	}
	need := d.staging.Plan(path, size, chunkBytes, digests)
	fetchDur, fetched, err := d.stageFetch(path, digests, need)
	if err != nil {
		fail(err)
		return
	}
	dur := planDur + fetchDur
	staged := d.staging.StagedBytes(path)
	tk := d.coidTrack()
	tk.AlignTo(align)
	tk.Emit(scope, "precopy_stage", align, dur, map[string]int64{
		"fetched_bytes": fetched,
		"staged_bytes":  staged,
	})
	resp := []byte{0}
	resp = appendU64(resp, uint64(dur))
	resp = appendU64(resp, uint64(fetched))
	resp = appendU64(resp, uint64(staged))
	reply(ep, opSnapifyPrecopyStageResp, resp)
}

// stageFetch pulls the needed chunks from the host store's chunk files
// into the staging area. Chunks are plain content-addressed files under
// the store's chunk prefix, served by the host IO daemon's overlay.
func (d *Daemon) stageFetch(path string, digests []string, need []int) (simclock.Duration, int64, error) {
	acc := simclock.NewPipelineAccum()
	var fetched int64
	for _, idx := range need {
		f, err := d.plat.IO.Open(d.dev.Node, simnet.HostNode, snapstore.ChunkPrefix+digests[idx], snapifyio.Read)
		if err != nil {
			return 0, 0, fmt.Errorf("coi: stage fetch chunk %d: %w", idx, err)
		}
		parts := make([]blob.Blob, 0, 1)
		var off int64
		for off < f.Size() {
			b, cost, err := f.Next(4 * simclock.MiB)
			if err != nil {
				f.Close() //nolint:errcheck // error path: close only releases the descriptor; the read error is what propagates
				return 0, 0, err
			}
			stream.Observe(acc, cost, d.plat.Model().PhiMemcpy(b.Len()))
			parts = append(parts, b)
			off += b.Len()
		}
		f.Close() //nolint:errcheck // read side at EOF: close only releases the descriptor
		content := blob.Concat(parts...)
		if err := d.staging.SetChunk(path, idx, content); err != nil {
			return 0, 0, err
		}
		fetched += content.Len()
	}
	return acc.Total(), fetched, nil
}

// tryAdoptedRestart restores the migrated process from the staging area:
// the pre-copy rounds parked (almost) every chunk on this card, so the
// restart installs page tables over resident frames instead of streaming
// the context from the host; only last-round stragglers are fetched. The
// committed manifest is the authority — Plan re-verifies every staged
// chunk against it, so a stale staging area degrades to extra fetches,
// never to a wrong image. ok=false falls back to the streaming restore.
func (d *Daemon) tryAdoptedRestart(cr *blcr.Checkpointer, ctxPath string, spawn blcr.Spawner) (*proc.Process, *blcr.Stats, bool) {
	size, chunkBytes, digests, committed, ok, planDur, err := d.plat.IO.StagePlan(d.dev.Node, simnet.HostNode, ctxPath)
	if err != nil || !ok || !committed {
		return nil, nil, false
	}
	need := d.staging.Plan(ctxPath, size, chunkBytes, digests)
	var fetchDur simclock.Duration
	if len(need) > 0 {
		fetchDur, _, err = d.stageFetch(ctxPath, digests, need)
		if err != nil {
			return nil, nil, false
		}
	}
	img, ok := d.staging.Image(ctxPath)
	if !ok {
		return nil, nil, false
	}
	restored, rst, err := cr.RestartAdopted(img, spawn)
	if err != nil {
		return nil, nil, false
	}
	rst.Duration += planDur + fetchDur
	d.staging.Drop(ctxPath)
	return restored, rst, true
}

// captureOnce runs one capture pass into path.
func (op *OffloadProc) captureOnce(cr *blcr.Checkpointer, mode uint8, streams int, chunk int64, path string) (*blcr.Stats, error) {
	if streams <= 1 && !cr.Retry().Enabled() {
		sink, err := op.d.plat.IO.Open(op.d.dev.Node, simnet.HostNode, path, snapifyio.Write)
		if err != nil {
			return nil, err
		}
		if mode == CaptureDelta {
			return cr.CheckpointDeltaFrozen(op.p, sink)
		}
		return cr.CheckpointFrozen(op.p, sink)
	}
	open := func(off, n, total int64) (stream.Sink, error) {
		return op.d.plat.IO.OpenStream(op.d.dev.Node, simnet.HostNode, path, snapifyio.Write, snapifyio.OpenOptions{
			Slots:  2,
			Stripe: snapifyio.Stripe{Offset: off, Length: n, Total: total},
		})
	}
	if mode == CaptureDelta {
		if cr.Retry().Enabled() {
			// The regions stay dirty until the capture verifies: a redo
			// must lay out the same delta. The agent marks clean after
			// runCapture returns success.
			return cr.CheckpointDeltaFrozenParallelKeepDirty(op.p, streams, chunk, open)
		}
		return cr.CheckpointDeltaFrozenParallel(op.p, streams, chunk, open)
	}
	return cr.CheckpointFrozenParallel(op.p, streams, chunk, open)
}

// verifySnapshotFile confirms the capture's context file was committed on
// host storage. A daemon crash can swallow acknowledged stripes, in which
// case every resumed stream still closes cleanly but the assembled file
// never appears — only a read-open of the final path proves the capture.
func (op *OffloadProc) verifySnapshotFile(path string, want int64) error {
	f, err := op.d.plat.IO.Open(op.d.dev.Node, simnet.HostNode, path, snapifyio.Read)
	if err != nil {
		return fmt.Errorf("coi: capture verification: %w", err)
	}
	size := f.Size()
	f.Close() //nolint:errcheck // size probe: close only releases the descriptor
	if size != want {
		return fmt.Errorf("coi: capture verification: %s is %d bytes, want %d", path, size, want)
	}
	return nil
}

// agentTrack is the offload process's lane in the trace: one row per
// offload process under its card's node.
func (op *OffloadProc) agentTrack() *obs.Track {
	return op.d.plat.Obs.TracerOf().Track(op.d.dev.Node.String(), op.p.Name())
}

// --- buffer re-registration (restore path) ---

// cmdBufferReregister re-registers an existing local-store region for RDMA
// on the (new) DMA channel and returns the new offset. It extends the
// command channel (see handleCommand).
const cmdBufferReregister uint8 = 20

func (op *OffloadProc) reregisterBuffer(id int) (int64, error) {
	name := BufferRegionName(id)
	r := op.p.Region(name)
	if r == nil {
		return 0, fmt.Errorf("coi: no region %q to re-register", name)
	}
	op.mu.Lock()
	dma := op.dmaEP
	op.mu.Unlock()
	if dma == nil {
		return 0, fmt.Errorf("coi: DMA channel not connected")
	}
	w, _, err := dma.Register(r, 0, r.Size())
	if err != nil {
		return 0, err
	}
	op.mu.Lock()
	op.buffers[id] = &deviceBuffer{id: id, size: r.Size(), window: w}
	op.mu.Unlock()
	return w.Offset, nil
}
