package experiments

import (
	"encoding/json"
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/faultinject"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/trace"
	"snapify/internal/workloads"
)

// FaultedCaptureImageBytes is the default device image of the faulted
// capture benchmark. It is deliberately smaller than the parallel sweep's
// 8 GiB image: the benchmark's object of study is the *relative* cost of
// riding out injected faults, and that ratio is size-independent once the
// image dwarfs the per-chunk protocol overhead.
const FaultedCaptureImageBytes = 1 * simclock.GiB

// FaultedCaptureRow is one capture's measurements (clean or faulted).
type FaultedCaptureRow struct {
	Label          string  `json:"label"`
	CaptureSeconds float64 `json:"capture_seconds"`
	CaptureNs      int64   `json:"capture_ns"`
	ThroughputMiBs float64 `json:"throughput_mib_s"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
}

// FaultedCaptureResult compares a clean capture against the same capture
// under an armed fault plan (DESIGN.md §10): the degraded path retries,
// replays from the per-stream watermark, and backs off on virtual-clock
// timers, so the faulted run finishes with an identical snapshot — just
// later. OverheadPct is that lateness.
type FaultedCaptureResult struct {
	Benchmark  string            `json:"benchmark"`
	ImageBytes int64             `json:"image_bytes"`
	Plan       faultinject.Plan  `json:"plan"`
	Clean      FaultedCaptureRow `json:"clean"`
	Faulted    FaultedCaptureRow `json:"faulted"`
	// FaultsFired is how many plan entries actually triggered;
	// FaultsPending is how many never saw matching traffic.
	FaultsFired   int     `json:"faults_fired"`
	FaultsPending int     `json:"faults_pending"`
	OverheadPct   float64 `json:"overhead_pct"`
	// RetryEvents and RetryBackoffNs total the stream_retry spans the
	// degraded run emitted. OverheadPct can be 0 while these are not:
	// a watermark-resumed stream often finishes before its slowest
	// unfaulted sibling, so the retry cost hides off the critical path.
	RetryEvents    int   `json:"retry_events"`
	RetryBackoffNs int64 `json:"retry_backoff_ns"`
}

// FaultedCapture captures one offload process twice — once clean, once
// with plan armed on the fabric — through the full retry-enabled Snapify
// stack, and reports the degraded-path overhead. The capture runs with
// two Snapify-IO streams and a four-attempt retry policy, the same
// configuration the chaos test tier sweeps.
func FaultedCapture(imageBytes int64, plan faultinject.Plan) (*FaultedCaptureResult, error) {
	if len(plan) == 0 {
		return nil, fmt.Errorf("faulted capture: empty fault plan")
	}
	plat, err := platform.New(platform.Config{Server: phi.ServerConfig{
		Devices: 1,
		Device:  phi.DeviceConfig{MemBytes: imageBytes + 2*simclock.GiB},
	}})
	if err != nil {
		return nil, err
	}
	if err := coi.StartDaemons(plat); err != nil {
		return nil, err
	}
	defer coi.StopDaemons(plat)
	defer plat.IO.Stop()

	spec := workloads.Spec{
		Code: "FC", Name: "faulted capture",
		HostMem:      16 * simclock.MiB,
		DeviceMem:    imageBytes,
		LocalStore:   4 * simclock.MiB,
		Calls:        4,
		StepsPerCall: 2,
	}
	in, err := workloads.Launch(plat, spec, 1)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	if _, err := in.RunCalls(1); err != nil {
		return nil, err
	}

	opts := core.CaptureOptions{
		Streams: 2,
		Retry:   core.RetryPolicy{MaxAttempts: 4},
	}
	// The injector is armed only across Capture/Wait: the pause and
	// resume control exchanges fail cleanly rather than retry (DESIGN.md
	// §10), so a fault there would abort the benchmark instead of
	// measuring the degraded data path.
	capture := func(label, path string, inj *faultinject.Injector) (FaultedCaptureRow, error) {
		s := core.NewSnapshot(path, in.CP)
		if err := s.Pause(); err != nil {
			return FaultedCaptureRow{}, fmt.Errorf("%s pause: %w", label, err)
		}
		plat.Server.Fabric.SetInjector(inj)
		err := s.Capture(opts)
		if err == nil {
			err = s.Wait()
		}
		plat.Server.Fabric.SetInjector(nil)
		if err != nil {
			return FaultedCaptureRow{}, fmt.Errorf("%s capture: %w", label, err)
		}
		if err := s.Resume(); err != nil {
			return FaultedCaptureRow{}, fmt.Errorf("%s resume: %w", label, err)
		}
		row := FaultedCaptureRow{
			Label:          label,
			CaptureSeconds: s.Report.Capture.Seconds(),
			CaptureNs:      int64(s.Report.Capture),
			SnapshotBytes:  s.Report.SnapshotBytes,
		}
		if row.CaptureSeconds > 0 {
			row.ThroughputMiBs = float64(imageBytes) / float64(simclock.MiB) / row.CaptureSeconds
		}
		return row, nil
	}

	res := &FaultedCaptureResult{
		Benchmark: "faulted-capture", ImageBytes: imageBytes, Plan: plan,
	}
	if res.Clean, err = capture("clean", "/bench/faults/clean", nil); err != nil {
		return nil, err
	}

	inj := faultinject.New(plan, nil)
	inj.PublishMetrics(plat.Obs.MetricsOf())
	res.Faulted, err = capture("faulted", "/bench/faults/faulted", inj)
	if err != nil {
		// Retries exhausted: the run still must not leave a torn
		// snapshot, but as a benchmark it has nothing to measure.
		return nil, fmt.Errorf("faulted capture did not survive the plan (raise Retry.MaxAttempts or soften the plan): %w", err)
	}
	res.FaultsFired = int(inj.FiredTotal())
	res.FaultsPending = len(inj.Pending())
	if res.Clean.CaptureSeconds > 0 {
		res.OverheadPct = (res.Faulted.CaptureSeconds/res.Clean.CaptureSeconds - 1) * 100
	}
	// The clean capture ran fault-free, so every stream_retry span on
	// the platform's tracer belongs to the degraded run.
	for _, sp := range plat.Obs.TracerOf().Spans() {
		if sp.Name == "stream_retry" {
			res.RetryEvents++
			res.RetryBackoffNs += int64(sp.Dur)
		}
	}
	return res, nil
}

// Render prints the comparison in the tables' layout.
func (r *FaultedCaptureResult) Render() string {
	t := trace.New(fmt.Sprintf("Faulted capture: %s device image, 2 streams, retry x4, %d-fault plan",
		sizeLabel(r.ImageBytes), len(r.Plan)),
		"Run", "Capture (s)", "MiB/s", "Snapshot (B)")
	for _, row := range []FaultedCaptureRow{r.Clean, r.Faulted} {
		t.Row(row.Label,
			fmt.Sprintf("%.2f", row.CaptureSeconds),
			fmt.Sprintf("%.0f", row.ThroughputMiBs),
			fmt.Sprintf("%d", row.SnapshotBytes))
	}
	return t.String() + fmt.Sprintf("\nfaults fired: %d/%d, stream retries: %d (%.1f virtual ms backoff), degraded-path overhead: %+.1f%%",
		r.FaultsFired, r.FaultsFired+r.FaultsPending,
		r.RetryEvents, float64(r.RetryBackoffNs)/1e6, r.OverheadPct)
}

// CheckShape verifies the degraded-path claims: the faulted capture
// produced a byte-identical-sized snapshot, at least one planned fault
// actually triggered (a plan with no matching traffic measures nothing),
// and riding out faults never made the capture faster.
func (r *FaultedCaptureResult) CheckShape() error {
	if r.Faulted.SnapshotBytes != r.Clean.SnapshotBytes {
		return fmt.Errorf("faulted capture: snapshot is %d bytes, clean is %d — retry changed the image",
			r.Faulted.SnapshotBytes, r.Clean.SnapshotBytes)
	}
	if r.FaultsFired == 0 {
		return fmt.Errorf("faulted capture: no planned fault fired (%d pending) — the plan's sites/keys saw no traffic",
			r.FaultsPending)
	}
	if r.Faulted.CaptureNs < r.Clean.CaptureNs {
		return fmt.Errorf("faulted capture: faulted run (%.2fs) beat the clean run (%.2fs)",
			r.Faulted.CaptureSeconds, r.Clean.CaptureSeconds)
	}
	return nil
}

// JSON renders the comparison as a BENCH_faults.json-style document.
func (r *FaultedCaptureResult) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
