package blcr

import (
	"fmt"
	"io"

	"snapify/internal/blob"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/stream"
)

// Image is the parsed identity of a checkpointed process, available to the
// Spawner before memory is restored.
type Image struct {
	Name    string
	PID     int
	Threads []string
}

// Spawner creates the process object a snapshot is restored into. It runs
// on the restore target, so region allocation draws on that node's memory
// budget (allocation failure aborts the restart, as it would on a full
// card). The COI daemon supplies the spawner when restoring offload
// processes.
type Spawner func(img *Image) (*proc.Process, error)

// Restart rebuilds a process from the context stream via spawn. The
// restored process is returned with its step gate paused; the caller
// resumes it once reconnection (Section 4.3) is complete.
func (c *Checkpointer) Restart(source stream.Source, spawn Spawner) (*proc.Process, *Stats, error) {
	return c.restartFrom(source, spawn, false)
}

// restartFrom is the shared record-parse loop behind Restart and
// RestartAdopted; adopt selects the page-adoption cost model.
func (c *Checkpointer) restartFrom(source stream.Source, spawn Spawner, adopt bool) (*proc.Process, *Stats, error) {
	acc := simclock.NewPipelineAccum()
	r := &contextReader{c: c, src: source, acc: acc, adopt: adopt}
	st := &Stats{}

	// Header.
	dec, err := r.readRecord()
	if err != nil {
		return nil, nil, err
	}
	if tag := dec.u16(); tag != tagHeader {
		return nil, nil, badContext("expected header, got tag %#x", tag)
	}
	if m := dec.str(); m != magic {
		return nil, nil, badContext("bad magic %q", m)
	}
	if v := dec.u64(); v != formatVersion {
		return nil, nil, badContext("unsupported version %d", v)
	}
	st.MetaWrites++

	// Process metadata.
	dec, err = r.readRecord()
	if err != nil {
		return nil, nil, err
	}
	if tag := dec.u16(); tag != tagProcMeta {
		return nil, nil, badContext("expected process metadata, got tag %#x", tag)
	}
	img := &Image{Name: dec.str(), PID: int(dec.u64())}
	_ = dec.u64() // original node; the target node is the spawner's choice
	nThreads := int(dec.u64())
	nRegions := int(dec.u64())
	st.MetaWrites++

	for i := 0; i < nThreads; i++ {
		dec, err = r.readRecord()
		if err != nil {
			return nil, nil, err
		}
		if tag := dec.u16(); tag != tagThread {
			return nil, nil, badContext("expected thread record, got tag %#x", tag)
		}
		img.Threads = append(img.Threads, dec.str())
		st.MetaWrites++
		st.Threads++
	}

	p, err := spawn(img)
	if err != nil {
		return nil, nil, fmt.Errorf("blcr: spawning restore target: %w", err)
	}
	r.onHost = p.Node().IsHost()
	// The restored process starts frozen; the caller resumes after
	// reconnection. Abandon cleans up if region restore fails midway.
	p.PauseSteps()
	abandon := func(err error) (*proc.Process, *Stats, error) {
		p.Terminate()
		return nil, nil, err
	}

	for i := 0; i < nRegions; i++ {
		dec, err = r.readRecord()
		if err != nil {
			return abandon(err)
		}
		if tag := dec.u16(); tag != tagRegionMeta {
			return abandon(badContext("expected region metadata, got tag %#x", tag))
		}
		name := dec.str()
		kind := proc.RegionKind(dec.u64())
		seed := dec.u64()
		size := int64(dec.u64())
		pinned := dec.u64() == 1
		external := dec.u64() == 1
		st.MetaWrites++

		reg, err := p.AddRegion(name, kind, size, seed)
		if err != nil {
			return abandon(fmt.Errorf("blcr: restoring region %q: %w", name, err))
		}
		if pinned {
			reg.Pin()
		}
		if external {
			// Memory-mapped file content is not in the context; the
			// restore driver (the COI daemon) reloads it from the saved
			// local-store files.
			st.Regions++
			continue
		}
		// Pages arrive in PageChunk pieces; restore them as they come.
		for off := int64(0); off < size; {
			n := size - off
			if n > PageChunk {
				n = PageChunk
			}
			content, err := r.readContent(n)
			if err != nil {
				return abandon(err)
			}
			reg.WriteBlob(off, content)
			off += n
		}
		st.Regions++
		st.Bytes += size
	}

	dec, err = r.readRecord()
	if err != nil {
		return abandon(err)
	}
	if tag := dec.u16(); tag != tagTrailer {
		return abandon(badContext("expected trailer, got tag %#x", tag))
	}
	if n := int(dec.u64()); n != nRegions {
		return abandon(badContext("trailer region count %d != %d", n, nRegions))
	}
	st.MetaWrites++
	st.Bytes += int64(st.MetaWrites) * (metaRecordSize + 8)

	st.Duration = acc.Total()
	return p, st, nil
}

// contextReader streams framed records and raw page content out of a
// stream.Source, charging virtual time as chunks arrive. Page content
// stays in blob form (synthetic background is never materialized).
type contextReader struct {
	c      *Checkpointer
	src    stream.Source
	acc    *simclock.PipelineAccum
	onHost bool // restore target is the host (set once the spawner ran)
	adopt  bool // pages are adopted in place, not copied (RestartAdopted)

	pending blob.Blob
	off     int64
}

// pull ensures at least n bytes are buffered (or returns an error).
func (r *contextReader) pull(n int64) error {
	for r.pending.Len()-r.off < n {
		chunk, cost, err := r.src.Next(PageChunk)
		if err == io.EOF {
			return badContext("truncated context file")
		}
		if err != nil {
			return err
		}
		// Restore-side producer stage: writing the pages into memory —
		// or, on the adoption path, only installing page-table entries
		// over frames that are already resident.
		restoreStage := r.c.model.PhiMemcpy
		if r.onHost {
			restoreStage = r.c.model.HostMemcpy
		}
		n := chunk.Len()
		if r.adopt {
			n /= pteBytesPerByte
		}
		stream.Observe(r.acc, cost, restoreStage(n))
		if r.off > 0 {
			r.pending = r.pending.Slice(r.off, r.pending.Len()-r.off)
			r.off = 0
		}
		r.pending = blob.Concat(r.pending, chunk)
	}
	return nil
}

// take returns the next n bytes as a blob.
func (r *contextReader) take(n int64) (blob.Blob, error) {
	if err := r.pull(n); err != nil {
		return blob.Blob{}, err
	}
	b := r.pending.Slice(r.off, n)
	r.off += n
	return b, nil
}

// readRecord parses one framed metadata record.
func (r *contextReader) readRecord() (*recDecoder, error) {
	hdr, err := r.take(8)
	if err != nil {
		return nil, err
	}
	hb := hdr.Bytes()
	n := int64(uint64(hb[0])<<56 | uint64(hb[1])<<48 | uint64(hb[2])<<40 | uint64(hb[3])<<32 |
		uint64(hb[4])<<24 | uint64(hb[5])<<16 | uint64(hb[6])<<8 | uint64(hb[7]))
	if n <= 0 || n > 1<<20 {
		return nil, badContext("implausible record length %d", n)
	}
	body, err := r.take(n)
	if err != nil {
		return nil, err
	}
	return &recDecoder{buf: body.Bytes()}, nil
}

// readContent returns n bytes of raw page content without materializing.
func (r *contextReader) readContent(n int64) (blob.Blob, error) {
	return r.take(n)
}
