// Swap scheduler: a COSMIC-style multi-tenant scheduler (the paper's
// Section 1 motivation for process swapping) runs three jobs whose
// combined footprint exceeds the card's physical memory. Snapify's
// swap-out/swap-in lets all three share the card round-robin — something
// the Phi OS's own page swapping cannot do, because COI buffers are
// pinned.
package main

import (
	"fmt"
	"os"
	"time"

	"snapify/internal/coi"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/sched"
	"snapify/internal/simclock"
	"snapify/internal/workloads"
)

func main() {
	// A deliberately small card: 2 GiB. Each job needs ~700 MiB resident.
	plat, err := platform.New(platform.Config{Server: phi.ServerConfig{
		Devices: 1,
		Device:  phi.DeviceConfig{MemBytes: 2 * simclock.GiB},
	}})
	check(err)
	check(coi.StartDaemons(plat))
	defer coi.StopDaemons(plat)

	s := sched.New(plat)
	spec := func(code string) workloads.Spec {
		return workloads.Spec{
			Code: code, Name: code,
			HostMem:        16 * simclock.MiB,
			DeviceMem:      300 * simclock.MiB,
			LocalStore:     300 * simclock.MiB,
			Calls:          8,
			StepsPerCall:   4,
			ComputePerCall: 50 * time.Millisecond,
			InPerCall:      64 * simclock.KiB,
			OutPerCall:     64 * simclock.KiB,
		}
	}

	fmt.Printf("card memory: %dMiB; each job needs ~700MiB resident\n\n",
		plat.Device(1).Mem.Capacity()/simclock.MiB)
	for _, code := range []string{"JOB-A", "JOB-B", "JOB-C"} {
		j, err := s.Submit(spec(code), 1)
		check(err)
		fmt.Printf("submitted %s -> %v\n", code, j.State)
	}

	fmt.Println("\nrunning round-robin, quantum = 2 offload calls ...")
	swaps, err := s.RunRoundRobin(2)
	check(err)

	fmt.Printf("\nall jobs finished; %d swap events shared one card between three tenants\n", swaps)
	for _, j := range s.Jobs() {
		fmt.Printf("  %s: %v, %d swap-outs, virtual runtime %.1fs\n",
			j.Spec.Code, j.State, j.Swaps, j.Inst.Runtime().Seconds())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swap_scheduler:", err)
		os.Exit(1)
	}
}
