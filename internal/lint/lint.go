// Package lint is a stdlib-only static-analysis framework for the Snapify
// codebase. It exists because the snapshot protocol's correctness claims
// rest on coding rules — every channel drained before capture, no silently
// dropped errors on the pause/capture/resume paths, no wall-clock time
// leaking into the simulated cost model — that ordinary `go vet` cannot
// express. Each Analyzer encodes one such invariant; the cmd/snapifylint
// driver runs them over the tree and gates the tier-1 verify script.
//
// The framework is built only on go/parser, go/ast, and go/types (the
// module is dependency-free by design), with its own package loader in
// load.go.
//
// # Suppressing a finding
//
// Every suppression must say why. Two mechanisms exist:
//
//   - An inline directive on the offending line:
//     `//nolint:<analyzer> // <justification>`. A bare `//nolint:<analyzer>`
//     with no justification does NOT suppress — the finding is reported
//     with a note asking for one.
//   - An entry in the allowlist file passed to the driver with -allowlist
//     (see allowlist.go for the format). Entries without a justification
//     fail to parse.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// An Analyzer checks one Snapify coding invariant over a type-checked
// package — or, for Module analyzers, over the whole loaded program at
// once.
type Analyzer struct {
	// Name is the short identifier used in reports, //nolint directives,
	// and allowlist entries.
	Name string
	// Doc is a one-line statement of the invariant the analyzer protects.
	Doc string
	// Run inspects the pass's package (or, for Module analyzers, the
	// pass's Prog) and reports findings through it.
	Run func(*Pass)
	// Module marks a whole-program analyzer: Run is invoked once per
	// lint.Run with Pass.Pkg nil and Pass.Prog set, instead of once per
	// package. Properties that span packages (the lock-order graph)
	// cannot be checked one package at a time.
	Module bool
}

// All returns every registered analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		UncheckedErr,
		Wallclock,
		MutexBlock,
		GoroutineLeak,
		PanicLib,
		RawPrint,
		Faultgate,
		Storegate,
		MapOrder,
		SpanLeak,
		LockOrder,
		CloseLeak,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Finding is one reported violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// A Pass is one analyzer applied to one package (or, for Module
// analyzers, to the whole program).
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis; nil for Module analyzers.
	Pkg *Package
	// Prog is the whole-program view (call graph, CFG cache), shared by
	// every pass of one lint.Run.
	Prog *Program

	findings []Finding
}

// Fset returns the file set positioning the pass's files.
func (p *Pass) Fset() *token.FileSet {
	if p.Pkg != nil {
		return p.Pkg.Fset
	}
	for _, pkg := range p.Prog.Pkgs {
		return pkg.Fset
	}
	return token.NewFileSet()
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset().Position(pos)
	p.findings = append(p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the packages and returns the surviving
// findings, sorted by position. Findings on lines carrying a justified
// //nolint:<analyzer> directive are dropped; directives without a
// justification leave the finding in place with a note appended.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunStats(pkgs, analyzers)
	return findings
}

// An AnalyzerStat summarizes one analyzer's work in a RunStats call.
type AnalyzerStat struct {
	Analyzer string        `json:"analyzer"`
	Findings int           `json:"findings"` // surviving findings (after //nolint, before allowlist)
	Wall     time.Duration `json:"wall_ns"`  // wall-clock spent in the analyzer's Run calls
}

// RunStats is Run plus per-analyzer counts and wall-clock timings (the
// driver's -stats view; lint-time regressions should be visible, not
// archaeological).
func RunStats(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []AnalyzerStat) {
	prog := BuildProgram(pkgs)
	directives := directiveSet{}
	for _, pkg := range pkgs {
		collectDirectives(pkg, directives)
	}
	var out []Finding
	stats := make([]AnalyzerStat, len(analyzers))
	keep := func(a *Analyzer, i int, pass *Pass) {
		for _, f := range pass.findings {
			switch directives.lookup(f.File, f.Line, a.Name) {
			case suppressJustified:
				// Acknowledged with a reason: drop.
			case suppressBare:
				f.Message += " (a //nolint directive suppresses only with a justification: //nolint:" + a.Name + " // why)"
				out = append(out, f)
				stats[i].Findings++
			default:
				out = append(out, f)
				stats[i].Findings++
			}
		}
	}
	for i, a := range analyzers {
		stats[i].Analyzer = a.Name
		start := time.Now() //nolint:wallclock // lint tooling self-measurement, not simulated time
		if a.Module {
			pass := &Pass{Analyzer: a, Prog: prog}
			a.Run(pass)
			keep(a, i, pass)
		} else {
			for _, pkg := range pkgs {
				pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog}
				a.Run(pass)
				keep(a, i, pass)
			}
		}
		stats[i].Wall = time.Since(start) //nolint:wallclock // lint tooling self-measurement, not simulated time
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, stats
}

// --- //nolint directives ---

type suppression int

const (
	suppressNone suppression = iota
	suppressBare
	suppressJustified
)

// directiveSet maps file → line → analyzer name (or "all") → whether the
// directive carries a justification.
type directiveSet map[string]map[int]map[string]bool

func (d directiveSet) lookup(file string, line int, analyzer string) suppression {
	byLine, ok := d[file]
	if !ok {
		return suppressNone
	}
	names, ok := byLine[line]
	if !ok {
		return suppressNone
	}
	for _, key := range []string{analyzer, "all"} {
		if justified, ok := names[key]; ok {
			if justified {
				return suppressJustified
			}
			return suppressBare
		}
	}
	return suppressNone
}

// collectDirectives scans every comment in the package for //nolint
// directives, adding them to set. A directive applies to the line it sits
// on (the usual trailing-comment placement).
func collectDirectives(pkg *Package, set directiveSet) {
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				names, justified, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					set[pos.Filename] = byLine
				}
				byName := byLine[pos.Line]
				if byName == nil {
					byName = map[string]bool{}
					byLine[pos.Line] = byName
				}
				for _, n := range names {
					// A justified directive wins over a bare duplicate.
					byName[n] = byName[n] || justified
				}
			}
		}
	}
}

// parseDirective parses one comment for a //nolint:a,b directive,
// returning the analyzer names and whether a justification follows
// (either `//nolint:x // reason` or `//nolint:x -- reason`).
func parseDirective(text string) (names []string, justified bool, ok bool) {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		return nil, false, false // block comments are not directives
	}
	rest, isDirective := strings.CutPrefix(strings.TrimLeft(body, " \t"), "nolint:")
	if !isDirective {
		return nil, false, false
	}
	nameList, reason, _ := strings.Cut(rest, " ")
	for _, n := range strings.Split(nameList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, false, false
	}
	reason = strings.TrimLeft(reason, " \t/-")
	return names, strings.TrimSpace(reason) != "", true
}

// inspectFiles runs fn over every node of every file in the pass's
// package.
func inspectFiles(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
