// Package coi reimplements the Coprocessor Offload Infrastructure, the
// upper-level MPSS library that offload applications program against
// (Section 2): process control on the coprocessor, COI buffers moved by
// SCIF RDMA, and the run-function pipeline between a host process and the
// server thread in its offload process. One COI daemon per card launches
// offload processes, monitors host and offload liveness, and cleans up.
//
// Snapify is implemented as modifications to this library and daemon
// (Section 4); the hooks live here — the lifecycle and RDMA critical
// regions, the shutdown markers on the command channels, the blocking
// run-function sends — and internal/core drives them.
//
// # Offload functions and resumability
//
// The Intel compiler turns each offload region into a function in the
// device binary. Here a Binary is a registry of named OffloadFuncs. Because
// Go cannot freeze a goroutine's stack the way BLCR freezes a thread,
// offload functions are written as *resumable step loops*: all state lives
// in the offload process's memory regions, progress is advanced through
// RunContext.Step (the safe-point gate), and re-invoking a function after a
// restore resumes from the region-recorded progress. The server thread
// records the active function in a control region that is part of every
// snapshot, so a snapshot taken mid-offload-region restores and completes
// correctly — the property the paper's case-4 drain protocol exists to
// guarantee.
package coi

import (
	"fmt"
	"sync"

	"snapify/internal/proc"
	"snapify/internal/simclock"
)

// OffloadFunc is one compiled offload region. args is the marshalled
// parameter block the host sent; the returned bytes travel back as the
// function's return value. Functions must be deterministic given the
// process's region state and must keep all progress in regions (see the
// package comment).
type OffloadFunc func(ctx *RunContext, args []byte) ([]byte, error)

// RegionSpec declares a memory region the offload binary sets up at load
// time (static data, heaps the runtime pre-allocates, per-thread stacks).
type RegionSpec struct {
	Name string
	Kind proc.RegionKind
	Size int64
	Seed uint64
}

// Binary is the device-side shared library the compiler generates for an
// offload application.
type Binary struct {
	Name    string
	Regions []RegionSpec
	funcs   map[string]OffloadFunc
}

// NewBinary returns an empty binary.
func NewBinary(name string) *Binary {
	return &Binary{Name: name, funcs: make(map[string]OffloadFunc)}
}

// AddRegion declares a load-time region.
func (b *Binary) AddRegion(name string, kind proc.RegionKind, size int64, seed uint64) *Binary {
	b.Regions = append(b.Regions, RegionSpec{Name: name, Kind: kind, Size: size, Seed: seed})
	return b
}

// Register adds a named offload function.
func (b *Binary) Register(name string, fn OffloadFunc) *Binary {
	if _, dup := b.funcs[name]; dup {
		panic(fmt.Sprintf("coi: duplicate offload function %q in %s", name, b.Name)) //nolint:paniclib // registration-time bug: duplicate offload function names are a programming error
	}
	b.funcs[name] = fn
	return b
}

// Lookup resolves a function name.
func (b *Binary) Lookup(name string) (OffloadFunc, error) {
	fn, ok := b.funcs[name]
	if !ok {
		return nil, fmt.Errorf("coi: no offload function %q in %s", name, b.Name)
	}
	return fn, nil
}

// The binary registry is the analogue of the device shared libraries on
// the host file system that MPSS copies to the card at launch (and that
// snapify_pause saves to the snapshot directory instead of copying back).
var (
	registryMu sync.Mutex
	registry   = make(map[string]*Binary)
)

// RegisterBinary publishes a binary so COI daemons can launch it by name.
// Re-registering a name replaces the previous binary (tests rebuild apps).
func RegisterBinary(b *Binary) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[b.Name] = b
}

// LookupBinary resolves a registered binary.
func LookupBinary(name string) (*Binary, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("coi: no registered binary %q", name)
	}
	return b, nil
}

// RunContext is what an executing offload function sees.
type RunContext struct {
	op      *OffloadProc
	compute simclock.Duration
}

// Proc returns the offload process.
func (c *RunContext) Proc() *proc.Process { return c.op.p }

// Region returns a named region of the offload process.
func (c *RunContext) Region(name string) *proc.Region { return c.op.p.Region(name) }

// Buffer returns the region backing COI buffer id.
func (c *RunContext) Buffer(id int) *proc.Region { return c.op.p.Region(BufferRegionName(id)) }

// Step executes one computation step inside the safe-point gate: a Snapify
// pause blocks new steps and waits for the running one, so region mutations
// never race with a snapshot. Functions call it once per outer iteration.
// It returns proc.ErrGateShutdown if the process is being torn down
// (swap-out with terminate), at which point the function must return
// promptly; its progress is already in regions.
func (c *RunContext) Step(step func()) error {
	if err := c.op.p.BeginStep(); err != nil {
		return err
	}
	defer c.op.p.EndStep()
	step()
	return nil
}
