// Package scp models the scp file-copy baseline of Table 3: ssh over the
// TCP/IP virtio interface. On a Xeon Phi the copy is CPU-bound — the
// cipher and MAC run on a single slow in-order core — so scp trails both
// NFS and Snapify-IO by more than an order of magnitude for large files.
package scp

import (
	"io"

	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/vfs"
)

// chunk is scp's internal transfer granularity.
const chunk = 256 * simclock.KiB

// Copy copies srcPath on srcFS (at srcNode) to dstPath on dstFS (at
// dstNode) and returns the virtual end-to-end time.
func Copy(fabric *simnet.Fabric, srcNode simnet.NodeID, srcFS vfs.NodeFS, srcPath string,
	dstNode simnet.NodeID, dstFS vfs.NodeFS, dstPath string) (simclock.Duration, error) {

	model := fabric.Model()
	r, err := srcFS.Open(srcPath)
	if err != nil {
		return 0, err
	}
	w, err := dstFS.Create(dstPath)
	if err != nil {
		return 0, err
	}

	acc := simclock.NewPipelineAccum()
	acc.Add(model.SCPHandshake)
	for {
		b, fsRead, err := r.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Abort()
			return 0, err
		}
		fsWrite, err := w.WriteBlob(b)
		if err != nil {
			w.Abort()
			return 0, err
		}
		// The cipher (encrypt on one side, decrypt on the other, both on
		// whichever card is involved) bottlenecks the stream; the TCP
		// window keeps the wire busy underneath it.
		cipher := simclock.Rate(model.SCPCipherBandwidth)(b.Len())
		wire := fabric.VirtioCost(srcNode, dstNode, b.Len())
		acc.Observe(fsRead, cipher, wire, fsWrite)
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return acc.Total(), nil
}
