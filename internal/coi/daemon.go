package coi

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"snapify/internal/faultinject"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapstore"
)

// DaemonPort is the fixed SCIF port every COI daemon listens on.
const DaemonPort = 2000

// Daemon opcodes on the lifecycle channel.
const (
	opLaunch uint8 = iota + 1
	opLaunchResp
	opDestroy
	opDestroyResp
	// Snapify service requests (Section 4.1): the daemon is the
	// coordinator of the pause/capture/resume/restore protocol.
	opSnapifyPause
	opSnapifyPauseResp
	opSnapifyDrain
	opSnapifyDrainResp
	opSnapifyCapture
	opSnapifyCaptureResp
	opSnapifyResume
	opSnapifyResumeResp
	opSnapifyRestore
	opSnapifyRestoreResp
	opAwaitReady
	opAwaitReadyResp
	// Live-migration extensions: a pre-copy round on the source card's
	// daemon (digest + ship while the process runs) and the staging
	// control on the destination card's daemon (sync staged chunks from
	// the host store, or drop them).
	opSnapifyPrecopy
	opSnapifyPrecopyResp
	opSnapifyPrecopyStage
	opSnapifyPrecopyStageResp
)

// Daemon is the per-card COI daemon (coi_daemon): it launches offload
// processes on request, monitors host- and offload-process liveness, cleans
// up after exits, and coordinates Snapify's snapshot protocol.
type Daemon struct {
	plat *platform.Platform
	dev  *phi.Device
	p    *proc.Process
	lst  *scif.Listener

	mu     sync.Mutex
	procs  map[int]*OffloadProc
	nextID int

	// crashed records offload processes that exited without announcement;
	// an expected exit (Snapify swap-out) must NOT land here (Section 3,
	// "Dealing with distributed states").
	crashed map[int]bool

	// Snapify monitor state: the list of active pause requests, each with
	// a dedicated monitor thread blocked on its pipe.
	monMu      sync.Mutex
	activeReqs map[int]*pauseState

	// staging parks pre-copy chunks arriving ahead of a live migration's
	// switch-over (this daemon's card is the migration destination).
	staging *snapstore.Staging
}

// daemonMemory is the daemon's own footprint on the card.
const daemonMemory = 16 * simclock.MiB

// StartDaemon launches the COI daemon on dev.
func StartDaemon(plat *platform.Platform, dev *phi.Device) (*Daemon, error) {
	p := plat.Procs.Spawn("coi_daemon", dev.Node, dev.Mem)
	if _, err := p.AddRegion("daemon", proc.RegionData, daemonMemory, 0); err != nil {
		p.Terminate()
		return nil, fmt.Errorf("coi: daemon memory on %v: %w", dev.Node, err)
	}
	lst, err := plat.Net.Listen(dev.Node, DaemonPort)
	if err != nil {
		p.Terminate()
		return nil, fmt.Errorf("coi: daemon port on %v: %w", dev.Node, err)
	}
	d := &Daemon{
		plat:       plat,
		dev:        dev,
		p:          p,
		lst:        lst,
		procs:      make(map[int]*OffloadProc),
		nextID:     1,
		crashed:    make(map[int]bool),
		activeReqs: make(map[int]*pauseState),
		staging:    snapstore.NewStaging(),
	}
	if err := p.SpawnThread("daemon_server", d.serve); err != nil {
		lst.Close() //nolint:errcheck // unwinding a failed start: the listener was just opened and has no connections
		p.Terminate()
		return nil, fmt.Errorf("coi: daemon server thread on %v: %w", dev.Node, err)
	}
	return d, nil
}

// Node returns the daemon's card node.
func (d *Daemon) Node() simnet.NodeID { return d.dev.Node }

// Staging exposes the daemon's pre-copy staging area — chaos tests
// assert it holds no orphan chunks after an aborted migration.
func (d *Daemon) Staging() *snapstore.Staging { return d.staging }

// Stop terminates the daemon and every offload process it manages.
func (d *Daemon) Stop() {
	d.lst.Close() //nolint:errcheck // daemon stop: a close error on the lifecycle listener has no recovery
	// Tear processes down in ascending ID order: exits announce on the
	// simulated network and advance virtual time, so iterating the map
	// directly would make shutdown traces run-to-run nondeterministic.
	d.mu.Lock()
	ids := make([]int, 0, len(d.procs))
	for id := range d.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	procs := make([]*OffloadProc, 0, len(ids))
	for _, id := range ids {
		procs = append(procs, d.procs[id])
	}
	d.mu.Unlock()
	for _, op := range procs {
		op.p.AnnounceExit()
		op.teardown()
	}
	d.p.AnnounceExit()
	d.p.Terminate()
}

// Crashed reports whether the daemon marked offload process id as crashed.
func (d *Daemon) Crashed(id int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed[id]
}

// Lookup returns the offload process with the given id.
func (d *Daemon) Lookup(id int) (*OffloadProc, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	op, ok := d.procs[id]
	if !ok {
		return nil, fmt.Errorf("coi: daemon %v: no offload process %d", d.dev.Node, id)
	}
	return op, nil
}

// serve accepts lifecycle connections from host processes; one handler
// goroutine per connection (the daemon serves many host processes).
func (d *Daemon) serve() {
	for {
		ep, err := d.lst.Accept()
		if err != nil {
			return
		}
		go d.handleConn(ep)
	}
}

func (d *Daemon) handleConn(ep *scif.Endpoint) {
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			ep.Close() //nolint:errcheck // the peer is gone (Recv failed); close only releases the endpoint
			return
		}
		op := raw[0]
		payload := raw[1:]
		// Fault hook: a dropped request makes the daemon momentarily
		// unreachable — the host gets a transient error reply it can retry
		// on (response opcodes pair with requests at op+1).
		if f := d.plat.Net.Fabric().Injector().Fire(faultinject.SiteRequest, d.dev.Node.String()); f != nil && f.Kind == faultinject.Drop {
			reply(ep, op+1, append([]byte{1}, []byte("injected fault: coi daemon unavailable")...))
			continue
		}
		switch op {
		case opLaunch:
			d.handleLaunch(ep, payload)
		case opDestroy:
			d.handleDestroy(ep, payload)
		case opSnapifyPause:
			d.handleSnapifyPause(ep, payload)
		case opSnapifyDrain:
			d.handleSnapifyDrain(ep, payload)
		case opSnapifyCapture:
			d.handleSnapifyCapture(ep, payload)
		case opSnapifyResume:
			d.handleSnapifyResume(ep, payload)
		case opSnapifyRestore:
			d.handleSnapifyRestore(ep, payload)
		case opSnapifyPrecopy:
			d.handleSnapifyPrecopy(ep, payload)
		case opSnapifyPrecopyStage:
			d.handleSnapifyPrecopyStage(ep, payload)
		case opAwaitReady:
			id := int(u32(payload))
			if op, err := d.Lookup(id); err != nil {
				reply(ep, opAwaitReadyResp, append([]byte{1}, []byte(err.Error())...))
			} else {
				op.AwaitChannels()
				reply(ep, opAwaitReadyResp, []byte{0})
			}
		default:
			ep.Close() //nolint:errcheck // protocol error: dropping the connection IS the error signal
			return
		}
	}
}

func reply(ep *scif.Endpoint, op uint8, payload []byte) {
	ep.Send(append([]byte{op}, payload...)) //nolint:errcheck // peer teardown surfaces on its Recv
}

func u32(b []byte) uint32                 { return binary.BigEndian.Uint32(b) }
func putU32(v uint32) []byte              { return binary.BigEndian.AppendUint32(nil, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func u16(b []byte) uint16                 { return binary.BigEndian.Uint16(b) }
func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func u64(b []byte) uint64                 { return binary.BigEndian.Uint64(b) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// handleLaunch creates an offload process running the named binary.
// Payload: binaryNameLen u32 | binaryName | binarySize i64.
func (d *Daemon) handleLaunch(ep *scif.Endpoint, payload []byte) {
	nameLen := u32(payload)
	name := string(payload[4 : 4+nameLen])
	binSize := int64(binary.BigEndian.Uint64(payload[4+nameLen:]))

	bin, err := LookupBinary(name)
	if err != nil {
		reply(ep, opLaunchResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	op, err := d.launch(bin, binSize)
	if err != nil {
		reply(ep, opLaunchResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	// Reply: 0 | procID u32 | #channels u32 | (nameLen u32 | name | port u32)*
	resp := []byte{0}
	resp = appendU32(resp, uint32(op.id))
	ports := op.ChannelPorts()
	resp = appendU32(resp, uint32(len(ports)))
	for _, cp := range ports {
		resp = appendU32(resp, uint32(len(cp.name)))
		resp = append(resp, cp.name...)
		resp = appendU32(resp, uint32(cp.port))
	}
	reply(ep, opLaunchResp, resp)
}

// launch builds the offload process and its runtime.
func (d *Daemon) launch(bin *Binary, binSize int64) (*OffloadProc, error) {
	d.mu.Lock()
	id := d.nextID
	d.nextID++
	d.mu.Unlock()

	op, err := newOffloadProc(d, bin, id, binSize)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.procs[id] = op
	d.mu.Unlock()

	// Crash monitoring: an exit that was not announced is a crash.
	op.p.OnExit(func(_ *proc.Process, expected bool) {
		d.mu.Lock()
		delete(d.procs, id)
		if !expected {
			d.crashed[id] = true
		}
		d.mu.Unlock()
		// Clean up the process's temporary files on the card.
		d.dev.FS.RemoveAll(fmt.Sprintf("/tmp/coi_procs/%d/", id))
	})
	return op, nil
}

// handleDestroy tears down an offload process at the host's request.
// Payload: procID u32.
func (d *Daemon) handleDestroy(ep *scif.Endpoint, payload []byte) {
	id := int(u32(payload))
	op, err := d.Lookup(id)
	if err != nil {
		reply(ep, opDestroyResp, append([]byte{1}, []byte(err.Error())...))
		return
	}
	op.p.AnnounceExit() // requested teardown is not a crash
	op.teardown()
	reply(ep, opDestroyResp, []byte{0})
}

// WatchHostProcess terminates the offload process if its host process
// exits (the daemon's normal cleanup duty, Section 2).
func (d *Daemon) WatchHostProcess(host *proc.Process, offloadID int) {
	host.OnExit(func(_ *proc.Process, _ bool) {
		if op, err := d.Lookup(offloadID); err == nil {
			op.p.AnnounceExit()
			op.teardown()
		}
	})
}
