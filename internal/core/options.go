package core

import (
	"errors"
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// This file validates every public option struct in one place: each entry
// point calls the relevant validate() before touching the platform, so a
// misconfigured option fails fast with an actionable message instead of a
// transport error deep in the data path.

// validate checks a CaptureOptions for internal consistency.
func (o *CaptureOptions) validate() error {
	if o.Streams < 0 {
		return fmt.Errorf("core: CaptureOptions.Streams is %d; want 0 (serial) or a positive stream count", o.Streams)
	}
	if o.ChunkBytes < 0 {
		return fmt.Errorf("core: CaptureOptions.ChunkBytes is %d; want 0 (default) or a positive chunk size", o.ChunkBytes)
	}
	if o.Retry.MaxAttempts < 0 {
		return fmt.Errorf("core: CaptureOptions.Retry.MaxAttempts is %d; want 0 (no retry) or a positive attempt bound", o.Retry.MaxAttempts)
	}
	if o.Retry.Backoff < 0 {
		return errors.New("core: CaptureOptions.Retry.Backoff is negative; want a non-negative virtual duration")
	}
	if o.Store.Parent != "" && !o.Store.Enabled {
		return errors.New("core: CaptureOptions.Store.Parent is set but Store.Enabled is false; enable the store to extend a parent manifest")
	}
	if o.Store.Replicas < 0 {
		return fmt.Errorf("core: CaptureOptions.Store.Replicas is %d; want 0 (no replication) or a positive copy count", o.Store.Replicas)
	}
	if o.Store.Replicas > 0 && !o.Store.Enabled {
		return errors.New("core: CaptureOptions.Store.Replicas is set but Store.Enabled is false; replication rides the store federation")
	}
	return nil
}

// validate checks a RestoreOptions for internal consistency.
func (o *RestoreOptions) validate() error {
	if o.Streams < 0 {
		return fmt.Errorf("core: RestoreOptions.Streams is %d; want 0 (serial) or a positive stream count", o.Streams)
	}
	if o.ChunkBytes < 0 {
		return fmt.Errorf("core: RestoreOptions.ChunkBytes is %d; want 0 (default) or a positive chunk size", o.ChunkBytes)
	}
	if o.Retry.MaxAttempts < 0 {
		return fmt.Errorf("core: RestoreOptions.Retry.MaxAttempts is %d; want 0 (no retry) or a positive attempt bound", o.Retry.MaxAttempts)
	}
	if o.Retry.Backoff < 0 {
		return errors.New("core: RestoreOptions.Retry.Backoff is negative; want a non-negative virtual duration")
	}
	if o.Store.Parent != "" {
		return errors.New("core: RestoreOptions.Store.Parent has no meaning on restore; leave it empty")
	}
	if o.Store.Replicas != 0 {
		return errors.New("core: RestoreOptions.Store.Replicas has no meaning on restore; leave it zero")
	}
	return nil
}

// PrecopyOptions configures the iterative pre-copy phase of a live
// migration: rounds of digest-and-ship run while the offload process keeps
// executing, and the process is paused only for the final small delta.
// The zero value disables pre-copy (stop-the-world migration).
type PrecopyOptions struct {
	// MaxRounds bounds the number of pre-copy rounds; a workload that
	// dirties memory faster than the link ships it would otherwise iterate
	// forever. Zero disables pre-copy entirely.
	MaxRounds int
	// DirtyFloorBytes stops iterating once a round's dirty set is at or
	// under this size: the remainder ships in the paused final capture.
	// Zero means rounds stop only on MaxRounds, DowntimeBudget, or lack
	// of progress.
	DirtyFloorBytes int64
	// DowntimeBudget, when positive, derives a dynamic stopping floor from
	// the observed shipping bandwidth: rounds stop as soon as the projected
	// time to ship the remaining dirty set fits the budget.
	DowntimeBudget simclock.Duration
	// Streams is how many parallel Snapify-IO streams each round ships
	// over; zero inherits MigrateOptions.Capture.Streams (or 1).
	Streams int
	// ChunkBytes is the digest/ship granularity; zero inherits
	// MigrateOptions.Capture.ChunkBytes (or the checkpointer default).
	ChunkBytes int64
}

// Enabled reports whether pre-copy is on.
func (o *PrecopyOptions) Enabled() bool { return o.MaxRounds > 0 }

// validate checks a PrecopyOptions for internal consistency.
func (o *PrecopyOptions) validate() error {
	if o.MaxRounds < 0 {
		return fmt.Errorf("core: PrecopyOptions.MaxRounds is %d; want 0 (stop-the-world) or a positive round bound", o.MaxRounds)
	}
	if o.DirtyFloorBytes < 0 {
		return fmt.Errorf("core: PrecopyOptions.DirtyFloorBytes is %d; want a non-negative byte floor", o.DirtyFloorBytes)
	}
	if o.DowntimeBudget < 0 {
		return errors.New("core: PrecopyOptions.DowntimeBudget is negative; want a non-negative virtual duration")
	}
	if o.Streams < 0 {
		return fmt.Errorf("core: PrecopyOptions.Streams is %d; want 0 (inherit) or a positive stream count", o.Streams)
	}
	if o.ChunkBytes < 0 {
		return fmt.Errorf("core: PrecopyOptions.ChunkBytes is %d; want 0 (inherit) or a positive chunk size", o.ChunkBytes)
	}
	if o.MaxRounds == 0 && (o.DirtyFloorBytes > 0 || o.DowntimeBudget > 0 || o.Streams > 0 || o.ChunkBytes > 0) {
		return errors.New("core: PrecopyOptions fields are set but MaxRounds is 0; set MaxRounds > 0 to enable pre-copy")
	}
	return nil
}

// MigrateOptions configures a migration (Migrate, NewMigration): the
// destination, the snapshot directory, and the capture/restore/pre-copy
// behavior. A zero Precopy gives the paper's stop-the-world migration.
type MigrateOptions struct {
	// DeviceTo is the destination coprocessor.
	DeviceTo simnet.NodeID
	// Path is the snapshot directory on the host file system.
	Path string
	// StageLocalStoreOnHost keeps the saved local store on the host
	// instead of streaming it device-to-device during the pause (the
	// device-direct path is the paper's default for migration).
	StageLocalStoreOnHost bool
	// Precopy turns the migration into a live one: iterative rounds ship
	// the image while the process runs, and only the final delta is
	// captured under pause. Pre-copy requires the dedup store data path;
	// enabling it forces Capture.Store.Enabled and Restore.Store.Enabled.
	Precopy PrecopyOptions
	// Capture configures the final (paused) capture.
	Capture CaptureOptions
	// Restore configures the restore on the destination card.
	Restore RestoreOptions
}

// validate checks a MigrateOptions against the handle being migrated.
func (o *MigrateOptions) validate(cp *coi.Process) error {
	if o.Path == "" {
		return errors.New("core: MigrateOptions.Path is empty; set the snapshot directory")
	}
	if o.DeviceTo == cp.DeviceNode() {
		return fmt.Errorf("core: migration target %v is the current device", o.DeviceTo)
	}
	if o.DeviceTo == simnet.HostNode {
		return errors.New("core: MigrateOptions.DeviceTo is the host; migration targets a coprocessor")
	}
	if err := o.Precopy.validate(); err != nil {
		return err
	}
	if err := o.Capture.validate(); err != nil {
		return err
	}
	if err := o.Restore.validate(); err != nil {
		return err
	}
	if o.Precopy.Enabled() && cp.Platform().Store == nil {
		return errors.New("core: pre-copy migration needs a snapshot store; build the platform with one")
	}
	return nil
}

// normalized returns a copy of o with the pre-copy defaults resolved: the
// store data path is forced on (pre-copy rounds live in the store's
// have/need negotiation), the chunk geometry is made consistent between
// rounds and the final capture (the dirty diff compares digest lists, so
// both must chunk identically), and stream counts inherit sensibly.
func (o MigrateOptions) normalized() MigrateOptions {
	if !o.Precopy.Enabled() {
		return o
	}
	o.Capture.Store.Enabled = true
	o.Restore.Store.Enabled = true
	if o.Precopy.ChunkBytes == 0 {
		o.Precopy.ChunkBytes = o.Capture.ChunkBytes
	}
	o.Capture.ChunkBytes = o.Precopy.ChunkBytes
	if o.Precopy.Streams == 0 {
		o.Precopy.Streams = o.Capture.Streams
	}
	if o.Precopy.Streams < 1 {
		o.Precopy.Streams = 1
	}
	return o
}
