package fleetd

// Chaos coverage for the control plane, driven by seeded fault plans:
// a destination host dying mid-evacuation-wave, and a capture crashing
// mid-preemption. The chaosBackend wraps ModelBackend and consults a
// faultinject plan at the two riskiest backend operations; every run
// is a pure function of its seed, so a failure replays from nothing
// but the seed.

import (
	"fmt"
	"testing"

	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/simclock"
	"snapify/internal/snapstore"
)

// Chaos keys at the federation site: the controller's migrate and
// swap-out choke points.
const (
	chaosMigrateKey = "fleet-migrate"
	chaosSwapKey    = "fleet-swapout"
)

// chaosPlan derives a seeded crash plan over the given keys: n faults
// with trigger ordinals in [1, maxNth], kinds pinned to Crash (the
// meaningful kind at these choke points).
func chaosPlan(seed uint64, keys []string, n, maxNth int) faultinject.Plan {
	menu := make([]faultinject.SiteKey, len(keys))
	for i, k := range keys {
		menu[i] = faultinject.SiteKey{Site: faultinject.SiteFederation, Key: k}
	}
	plan := faultinject.SeededPlan(seed, menu, n, maxNth)
	for i := range plan {
		plan[i].Kind = faultinject.Crash
	}
	return plan
}

// chaosBackend wraps ModelBackend with fault injection: a fired
// migrate fault kills the destination host mid-transfer (the op fails
// with ErrHostDead, as the federation would report it), and a fired
// swap-out fault crashes the capture (clean failure, snapshot absent).
type chaosBackend struct {
	*ModelBackend
	inj *faultinject.Injector
}

func (b *chaosBackend) Migrate(j *Job, dstHost string, dstCard int) (simclock.Duration, error) {
	if f := b.inj.Fire(faultinject.SiteFederation, chaosMigrateKey); f != nil {
		return 0, fmt.Errorf("chaos: migrating job %d to %s: %w", j.ID, dstHost, snapstore.ErrHostDead)
	}
	return b.ModelBackend.Migrate(j, dstHost, dstCard)
}

func (b *chaosBackend) SwapOut(j *Job) (simclock.Duration, error) {
	if f := b.inj.Fire(faultinject.SiteFederation, chaosSwapKey); f != nil {
		return 0, fmt.Errorf("chaos: capture of job %d crashed", j.ID)
	}
	return b.ModelBackend.SwapOut(j)
}

var _ Backend = (*chaosBackend)(nil)

// runChaosEvacuation drains a fully packed host while a seeded plan
// kills migration destinations mid-wave, and returns the final stats.
func runChaosEvacuation(t *testing.T, seed uint64) Stats {
	t.Helper()
	be := &chaosBackend{
		ModelBackend: NewModelBackend(ModelOptions{
			Hosts: 4, CardsPerHost: 1, CardMem: 4 << 30, ReplicaK: 2,
		}),
		inj: faultinject.New(chaosPlan(seed, []string{chaosMigrateKey}, 2, 4), nil),
	}
	c := New(Options{EvacWave: 4}, be, obs.New())
	var specs []JobSpec
	for id := 1; id <= 8; id++ {
		specs = append(specs, JobSpec{
			ID: id, Tenant: "tenant-a",
			Footprint: 512 << 20, Bursts: 4,
			BurstLen: 50 * ms, ThinkLen: 2000 * ms,
		})
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	c.ScheduleEvacuation(2*ms, "h000", 300000*ms)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

// TestChaosFleetEvacuationHostKill packs eight jobs onto one host and
// drains it while the fault plan kills destination hosts mid-wave. The
// controller must absorb the losses — re-routing in-flight moves,
// requeueing jobs stranded on the dead destinations — and still land
// every job on a living host.
func TestChaosFleetEvacuationHostKill(t *testing.T) {
	st := runChaosEvacuation(t, 0xC0FFEE)
	if st.Completed != 8 {
		t.Fatalf("completed %d of 8 jobs: %+v", st.Completed, st)
	}
	if st.EvacFails == 0 {
		t.Fatalf("seeded plan fired no mid-wave host kill: %+v", st)
	}
	if st.EvacMoves == 0 {
		t.Fatalf("evacuation moved nothing: %+v", st)
	}
}

// TestChaosFleetEvacuationSeedReplay replays the evacuation chaos run:
// the same seed must reproduce the identical stats, and other seeds
// must still drive every job to completion.
func TestChaosFleetEvacuationSeedReplay(t *testing.T) {
	a := runChaosEvacuation(t, 0xC0FFEE)
	b := runChaosEvacuation(t, 0xC0FFEE)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if st := runChaosEvacuation(t, seed); st.Completed != 8 {
			t.Errorf("seed %d: completed %d of 8: %+v", seed, st.Completed, st)
		}
	}
}

// runChaosPreemption races a high-priority arrival against a resident
// low-priority job while a seeded plan crashes swap-out captures, and
// returns the final stats.
func runChaosPreemption(t *testing.T, seed uint64) Stats {
	t.Helper()
	be := &chaosBackend{
		ModelBackend: NewModelBackend(ModelOptions{
			Hosts: 1, CardsPerHost: 1, CardMem: 1 << 30, ReplicaK: 1,
		}),
		inj: faultinject.New(chaosPlan(seed, []string{chaosSwapKey}, 1, 1), nil),
	}
	c := New(Options{}, be, obs.New())
	specs := []JobSpec{
		{ID: 1, Tenant: "tenant-a", Priority: 0, Arrival: 0,
			Footprint: 1 << 30, Bursts: 3, BurstLen: 10 * ms, ThinkLen: 100 * ms},
		{ID: 2, Tenant: "tenant-b", Priority: 2, Arrival: 200 * ms,
			Footprint: 1 << 30, Bursts: 2, BurstLen: 10 * ms, ThinkLen: 10 * ms},
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

// TestChaosFleetPreemptionCrash crashes the eviction capture the first
// time a high-priority arrival preempts the resident job. The aborted
// eviction must leave the victim unharmed and running; the next
// dispatch retries, succeeds, and both jobs finish.
func TestChaosFleetPreemptionCrash(t *testing.T) {
	st := runChaosPreemption(t, 0xBADBEEF)
	if st.Completed != 2 {
		t.Fatalf("completed %d of 2 jobs: %+v", st.Completed, st)
	}
	if st.PreemptAborts == 0 || st.SwapFails == 0 {
		t.Fatalf("seeded plan crashed no capture mid-preemption: %+v", st)
	}
	if st.Preemptions == 0 {
		t.Fatalf("retry after the aborted eviction never preempted: %+v", st)
	}
}

// TestChaosFleetPreemptionSeedReplay pins determinism of the
// preemption chaos run.
func TestChaosFleetPreemptionSeedReplay(t *testing.T) {
	a := runChaosPreemption(t, 0xBADBEEF)
	b := runChaosPreemption(t, 0xBADBEEF)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
