package blcr

import (
	"errors"
	"fmt"

	"snapify/internal/proc"
	"snapify/internal/stream"
)

// The callback machinery mirrors BLCR's libcr API on the host
// (cr_register_callback / cr_request_checkpoint / cr_checkpoint), which is
// how Snapify hooks the host-process checkpoint: the registered callback
// pauses and captures the offload process around the host snapshot
// (Section 5, Fig 5).

// Rc values returned by Request.Checkpoint, matching cr_checkpoint's
// convention: 0 in the continuing original process, positive in a process
// that was just restarted from the snapshot.
const (
	RcContinue = 0
	RcRestart  = 1
)

// Callback is the registered checkpoint callback. It must call
// req.Checkpoint() exactly once and branch on the returned rc.
type Callback func(req *Request) error

// Client attaches the callback machinery to one host process.
type Client struct {
	cr       *Checkpointer
	p        *proc.Process
	callback Callback
}

// NewClient returns a client for p.
func NewClient(cr *Checkpointer, p *proc.Process) *Client {
	return &Client{cr: cr, p: p}
}

// Process returns the attached process.
func (c *Client) Process() *proc.Process { return c.p }

// RegisterCallback installs the checkpoint callback (cr_register_callback).
func (c *Client) RegisterCallback(cb Callback) { c.callback = cb }

// Request is the context passed to a Callback.
type Request struct {
	client  *Client
	restart bool
	sink    stream.Sink
	stats   *Stats
	called  bool
}

// Stats returns the checkpoint stats after Checkpoint ran with RcContinue.
func (r *Request) Stats() *Stats { return r.stats }

// Restarting reports whether this callback invocation belongs to a process
// that was just restored from a snapshot. In the real BLCR the code before
// cr_checkpoint does not re-execute on restart (execution resumes inside
// cr_checkpoint); a Go callback emulates that by skipping its pre-snapshot
// work when Restarting is true — the work's effects are already part of
// the restored state.
func (r *Request) Restarting() bool { return r.restart }

// Checkpoint performs the actual process snapshot (cr_checkpoint). In a
// checkpoint request it writes the host process to the request's sink and
// returns RcContinue; in a restarted process it writes nothing and returns
// RcRestart, which is the branch where the callback restores the offload
// process (Fig 5c).
func (r *Request) Checkpoint() (int, error) {
	if r.called {
		return 0, errors.New("blcr: cr_checkpoint called twice in one callback")
	}
	r.called = true
	if r.restart {
		return RcRestart, nil
	}
	st, err := r.client.cr.Checkpoint(r.client.p, r.sink)
	if err != nil {
		return 0, err
	}
	r.stats = st
	return RcContinue, nil
}

// RequestCheckpoint triggers the checkpoint path (cr_request_checkpoint or
// the cr_checkpoint command-line tool): the callback runs synchronously
// and must have invoked Checkpoint. It returns the checkpoint stats.
func (c *Client) RequestCheckpoint(sink stream.Sink) (*Stats, error) {
	if c.callback == nil {
		return nil, errors.New("blcr: no callback registered")
	}
	req := &Request{client: c, sink: sink}
	if err := c.callback(req); err != nil {
		return nil, fmt.Errorf("blcr: checkpoint callback: %w", err)
	}
	if !req.called {
		return nil, errors.New("blcr: callback returned without calling cr_checkpoint")
	}
	return req.stats, nil
}

// ResumeRestarted runs the callback in restart mode against an
// already-restored process: the callback's cr_checkpoint returns RcRestart
// and the callback rebuilds the offload side. BLCR enters the restarted
// process inside cr_checkpoint the same way.
func (c *Client) ResumeRestarted() error {
	if c.callback == nil {
		return errors.New("blcr: no callback registered")
	}
	req := &Request{client: c, restart: true}
	if err := c.callback(req); err != nil {
		return fmt.Errorf("blcr: restart callback: %w", err)
	}
	if !req.called {
		return errors.New("blcr: callback returned without calling cr_checkpoint")
	}
	return nil
}
