// Package spanleak is a golden fixture for the spanleak analyzer: every
// line marked with a want comment must produce exactly one finding with
// the quoted substring, and a line ending in a bare nolint directive
// must produce the amended no-justification finding. See golden_test.go.
package spanleak

import (
	"errors"

	"snapify/internal/obs"
)

var errEarly = errors.New("early")

// leaky: the span is ended on the happy path but not on the early error
// return — the classic shape the analyzer exists for.
func leaky(tk *obs.Track, fail bool) error {
	sp := tk.Begin(0, "capture", nil) // want "is not ended on the path leaving the function"
	if fail {
		return errEarly
	}
	sp.End()
	return nil
}

// partial: ended in one branch only; the fallthrough exit leaks.
func partial(tk *obs.Track, ok bool) {
	sp := tk.Begin(0, "resume", nil) // want "is not ended on the path leaving the function"
	if ok {
		sp.End()
	}
}

// twoSpans: the inner span is ended, the outer falls off the end open.
func twoSpans(tk *obs.Track) {
	outer := tk.Begin(0, "pause", nil) // want "is not ended on the path leaving the function"
	outer.SetArg("phase", 1)
	inner := tk.Begin(0, "drain", nil)
	inner.SetArg("bytes", 4096)
	inner.End()
}

// deferred: `defer sp.End()` right after Begin discharges every exit.
func deferred(tk *obs.Track, fail bool) error {
	sp := tk.Begin(0, "restore", nil)
	defer sp.End()
	if fail {
		return errEarly
	}
	return nil
}

// earlyEnd: an explicit early EndAt composes with the deferred End
// because End is idempotent.
func earlyEnd(tk *obs.Track, fast bool) {
	sp := tk.BeginAt(0, "reconnect", 0, nil)
	defer sp.End()
	if fast {
		sp.EndAt(10)
	}
}

// handoff: returning the span moves the obligation to the caller.
func handoff(tk *obs.Track) *obs.OpenSpan {
	return tk.BeginAt(0, "upload", 0, nil)
}

// handoffVar: same through a local.
func handoffVar(tk *obs.Track) *obs.OpenSpan {
	sp := tk.Begin(0, "commit", nil)
	return sp
}

// handToHelper: passing the span to any function hands ownership over.
func handToHelper(tk *obs.Track) {
	sp := tk.Begin(0, "verify", nil)
	finish(sp)
}

func finish(sp *obs.OpenSpan) { sp.End() }

func suppressed(tk *obs.Track) {
	sp := tk.Begin(0, "intentional", nil) //nolint:spanleak // golden fixture: a justified directive suppresses the finding
	sp.SetArg("bytes", 1)
}

// A directive with no justification must NOT suppress: the finding is
// reported with a message explaining what a directive needs.
func bareDirective(tk *obs.Track) {
	sp := tk.Begin(0, "orphan", nil) //nolint:spanleak
	sp.SetArg("bytes", 1)
}
