package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"snapify/internal/obs/analyze"
)

// CheckBaselines is the benchmark regression gate: it reads every
// BENCH_*.json under dir, re-runs the benchmark each one records at its
// recorded parameters (image size, cycle count, size grid), and compares
// the fresh result against the committed numbers with
// analyze.CompareBenchJSON. The virtual clock makes every non-"wall"
// field exactly reproducible, so the gate's default 1% tolerance exists
// only to absorb float formatting, not timing noise — a drifted field
// means the data path changed.
//
// The returned report always describes every baseline checked; ok is
// false when any baseline regressed. An error means the gate itself
// could not run (unreadable dir, unknown benchmark, a benchmark failing
// outright) — distinct from a regression.
func CheckBaselines(dir string) (report string, ok bool, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", false, fmt.Errorf("benchgate: %v", err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return "", false, fmt.Errorf("benchgate: no BENCH_*.json baselines under %s", dir)
	}
	var b strings.Builder
	ok = true
	for _, p := range paths {
		baseline, err := os.ReadFile(p)
		if err != nil {
			return "", false, fmt.Errorf("benchgate: %v", err)
		}
		fresh, err := rerunBaseline(baseline)
		if err != nil {
			return "", false, fmt.Errorf("benchgate: %s: %v", p, err)
		}
		regs, err := analyze.CompareBenchJSON(baseline, fresh, analyze.DefaultCheckOptions())
		if err != nil {
			return "", false, fmt.Errorf("benchgate: %s: %v", p, err)
		}
		b.WriteString(analyze.RenderRegressions(filepath.Base(p), regs))
		b.WriteByte('\n')
		if len(regs) > 0 {
			ok = false
		}
	}
	return b.String(), ok, nil
}

// rerunBaseline re-runs the benchmark a baseline document records, at
// the parameters stored in the document itself, and returns the fresh
// result's JSON. Parameters ride in the baseline (not in the gate) so a
// smoke-scale baseline re-runs at smoke scale.
func rerunBaseline(baseline []byte) ([]byte, error) {
	var head struct {
		Benchmark    string `json:"benchmark"`
		ImageBytes   int64  `json:"image_bytes"`
		Cycles       int    `json:"cycles"`
		Hosts        int    `json:"hosts"`
		Legs         int    `json:"legs"`
		CardsPerHost int    `json:"cards_per_host"`
		CardMemBytes int64  `json:"card_mem_bytes"`
		Jobs         int    `json:"jobs"`
		Tenants      int    `json:"tenants"`
		QueueDepth   int    `json:"queue_depth"`
		Seed         uint64 `json:"seed"`
		Rows         []struct {
			Streams    int   `json:"streams"`
			ImageBytes int64 `json:"image_bytes"`
			OversubPct int   `json:"oversub_pct"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(baseline, &head); err != nil {
		return nil, err
	}
	switch head.Benchmark {
	case "parallel-capture":
		streams := make([]int, 0, len(head.Rows))
		for _, r := range head.Rows {
			streams = append(streams, r.Streams)
		}
		if len(streams) == 0 {
			return nil, fmt.Errorf("baseline has no rows to replay")
		}
		res, err := ParallelCapture(head.ImageBytes, streams)
		if err != nil {
			return nil, err
		}
		return res.JSON()
	case "dedup-swap":
		res, err := DedupSwap(head.ImageBytes, head.Cycles)
		if err != nil {
			return nil, err
		}
		return res.JSON()
	case "federation":
		res, err := FederationBench(head.ImageBytes, head.Hosts, head.Legs)
		if err != nil {
			return nil, err
		}
		return res.JSON()
	case "fleet":
		ratios := make([]int, 0, len(head.Rows))
		for _, r := range head.Rows {
			ratios = append(ratios, r.OversubPct)
		}
		if len(ratios) == 0 {
			return nil, fmt.Errorf("baseline has no rows to replay")
		}
		res, err := FleetBench(FleetParams{
			Hosts: head.Hosts, CardsPerHost: head.CardsPerHost, CardMem: head.CardMemBytes,
			Jobs: head.Jobs, Tenants: head.Tenants, QueueDepth: head.QueueDepth,
			Seed: head.Seed, Ratios: ratios,
		})
		if err != nil {
			return nil, err
		}
		return res.JSON()
	case "migrate-sweep":
		sizes := make([]int64, 0, len(head.Rows))
		for _, r := range head.Rows {
			sizes = append(sizes, r.ImageBytes)
		}
		if len(sizes) == 0 {
			return nil, fmt.Errorf("baseline has no rows to replay")
		}
		res, err := MigrateSweep(sizes)
		if err != nil {
			return nil, err
		}
		return res.JSON()
	default:
		return nil, fmt.Errorf("unknown benchmark %q", head.Benchmark)
	}
}
