// Package fanout provides the bounded worker pool the parallel snapshot
// data path runs on: the checkpointer, the COI daemon, and the core API all
// partition their per-region or per-shard work with Run.
package fanout

import "sync"

// Run executes fn(i) for every i in [0, items) on at most workers
// concurrent goroutines and waits for all of them. It returns the first
// error in item order (all items run regardless — snapshot shards must not
// be silently skipped, and a striped sink is only consistent once every
// worker has finished or aborted). workers < 1 is treated as 1.
func Run(workers, items int, fn func(i int) error) error {
	if items <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > items {
		workers = items
	}
	errs := make([]error, items)
	var next int
	var panicked any
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panic in fn is a bug, not a recoverable fault — but it
			// must not strand the sibling workers or the caller's
			// WaitGroup. Capture it, drain the pool, and re-raise on
			// the caller's goroutine after the join.
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					next = items // stop handing out work
					mu.Unlock()
				}
			}()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= items {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked) //nolint:paniclib // re-raising a worker's panic on the caller's goroutine, not originating one
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
