package experiments

import (
	"strings"
	"testing"

	"snapify/internal/faultinject"
	"snapify/internal/simclock"
)

// A plan that exercises both the transport retry (a dropped send on the
// up-link) and the watermark replay (a dropped chunk at the daemon).
func testFaultPlan() faultinject.Plan {
	return faultinject.Plan{
		{Site: faultinject.SiteSend, Key: faultinject.LinkKey("mic0", "host"), Kind: faultinject.Drop, Nth: 3},
		{Site: faultinject.SiteChunk, Kind: faultinject.Drop, Nth: 5},
	}
}

func TestFaultedCaptureShape(t *testing.T) {
	res, err := FaultedCapture(64*simclock.MiB, testFaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	if res.FaultsFired == 0 {
		t.Fatal("no fault fired; the benchmark measured nothing")
	}
	if res.RetryEvents == 0 || res.RetryBackoffNs == 0 {
		t.Errorf("degraded run recorded no stream retries (events=%d, backoff=%dns)",
			res.RetryEvents, res.RetryBackoffNs)
	}
	if res.OverheadPct < 0 {
		t.Errorf("degraded path was faster than clean: %+.1f%%", res.OverheadPct)
	}
	out := res.Render()
	for _, want := range []string{"clean", "faulted", "degraded-path overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	if _, err := res.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultedCaptureRejectsEmptyPlan(t *testing.T) {
	if _, err := FaultedCapture(64*simclock.MiB, nil); err == nil {
		t.Fatal("empty plan must be rejected")
	}
}
