package fleetd

import "snapify/internal/simclock"

// event is one scheduled occurrence on the controller's virtual
// timeline. Ordering is (time, seq): seq breaks same-instant ties in
// schedule order, which is what makes a run a pure function of its
// inputs.
type event struct {
	at  simclock.Duration
	seq uint64
	// job is the subject (0 for control events like evacuation starts).
	job int
	// epoch guards against stale events: a job's epoch bumps whenever a
	// failure or preemption invalidates its scheduled future.
	epoch int
	kind  eventKind
}

type eventKind int

const (
	evArrival eventKind = iota
	evBurstEnd
	evThinkEnd
	evOpDone    // an engine op (launch/swap/migrate/recover) completed
	evEvacuate  // start draining a host (job field unused, host in drain record)
	evServeCard // retry one card's waiter queue after a failed serve attempt
	evHeartbeat // re-run the dispatch loop (after external state changes)
)

// eventHeap is a binary min-heap over (at, seq). It is the control
// plane's O(log n) core: push and pop cost one sift each, so per-event
// work stays logarithmic no matter how many hosts and jobs are in
// flight. cmps counts comparisons for the complexity-pinning test.
type eventHeap struct {
	es   []event
	cmps int64
}

func (h *eventHeap) Len() int { return len(h.es) }

func (h *eventHeap) less(i, j int) bool {
	h.cmps++
	a, b := &h.es[i], &h.es[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) Push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

func (h *eventHeap) Pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.es[i], h.es[smallest] = h.es[smallest], h.es[i]
		i = smallest
	}
	return top
}

// jobHeap orders admitted-but-unplaced jobs by (priority desc, arrival
// asc, ID asc) — the admission queue's dispatch order.
type jobHeap struct {
	js []*Job
}

func (h *jobHeap) Len() int { return len(h.js) }

func (h *jobHeap) less(i, j int) bool {
	a, b := h.js[i], h.js[j]
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	if a.Spec.Arrival != b.Spec.Arrival {
		return a.Spec.Arrival < b.Spec.Arrival
	}
	return a.ID < b.ID
}

func (h *jobHeap) Push(j *Job) {
	h.js = append(h.js, j)
	i := len(h.js) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.js[i], h.js[parent] = h.js[parent], h.js[i]
		i = parent
	}
}

func (h *jobHeap) Peek() *Job {
	if len(h.js) == 0 {
		return nil
	}
	return h.js[0]
}

func (h *jobHeap) Pop() *Job {
	top := h.js[0]
	last := len(h.js) - 1
	h.js[0] = h.js[last]
	h.js[last] = nil
	h.js = h.js[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.js[i], h.js[smallest] = h.js[smallest], h.js[i]
		i = smallest
	}
	return top
}
