package fleetd

// Trace-driven open-loop arrival generation. The generator produces a
// bursty job stream: arrivals cluster into bursts (a tenant submitting
// a campaign) separated by longer lulls, which is what stresses the
// admission queue and the oversubscription machinery far more than a
// uniform trickle would. Everything is integer splitmix64 arithmetic on
// a caller-provided seed, so a trace is a pure function of its config.

import "snapify/internal/simclock"

// TraceConfig parameterizes GenerateTrace.
type TraceConfig struct {
	Seed uint64
	// Jobs is the trace length.
	Jobs int
	// Tenants is how many tenants share the fleet; tenant t submits with
	// priority t%3 (0 low, 2 high).
	Tenants int
	// CardMem scales footprints: jobs take 1/8, 1/4 or 1/2 of a card.
	CardMem int64
	// BurstEvery is the mean arrival-burst spacing; bursts hold 4-11
	// jobs spaced MeanGap/8 apart. 0 defaults to 20ms.
	BurstEvery simclock.Duration
	// MeanGap is the mean intra-burst spacing. 0 defaults to 1ms.
	MeanGap simclock.Duration
	// BurstScale and ThinkScale multiply the generated burst and think
	// lengths (0 means 1). The fleet benchmark stretches thinks far past
	// the swap cycle so memory oversubscription has something to win.
	BurstScale int
	ThinkScale int
}

func (c TraceConfig) burstEvery() simclock.Duration {
	if c.BurstEvery <= 0 {
		return 20 * simclock.Duration(1e6)
	}
	return c.BurstEvery
}

func (c TraceConfig) meanGap() simclock.Duration {
	if c.MeanGap <= 0 {
		return simclock.Duration(1e6)
	}
	return c.MeanGap
}

// splitmix64 advances *s and returns the next value of the sequence —
// the repo's standard deterministic generator.
func splitmix64(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// GenerateTrace produces cfg.Jobs job specs with bursty open-loop
// arrival times, IDs 1..Jobs in arrival order.
func GenerateTrace(cfg TraceConfig) []JobSpec {
	if cfg.Jobs <= 0 {
		return nil
	}
	tenants := cfg.Tenants
	if tenants <= 0 {
		tenants = 4
	}
	cardMem := cfg.CardMem
	if cardMem <= 0 {
		cardMem = 8 << 30
	}
	burstScale := simclock.Duration(cfg.BurstScale)
	if burstScale <= 0 {
		burstScale = 1
	}
	thinkScale := simclock.Duration(cfg.ThinkScale)
	if thinkScale <= 0 {
		thinkScale = 1
	}
	s := cfg.Seed
	specs := make([]JobSpec, 0, cfg.Jobs)
	at := simclock.Duration(0)
	id := 1
	for id <= cfg.Jobs {
		// One arrival burst: 4-11 jobs close together.
		n := 4 + int(splitmix64(&s)%8)
		for i := 0; i < n && id <= cfg.Jobs; i++ {
			tenant := int(splitmix64(&s) % uint64(tenants))
			// Footprint: 1/8, 1/4 or 1/2 of a card, biased small.
			var fp int64
			switch splitmix64(&s) % 4 {
			case 0:
				fp = cardMem / 2
			case 1:
				fp = cardMem / 4
			default:
				fp = cardMem / 8
			}
			bursts := 2 + int(splitmix64(&s)%4)
			// Burst and think lengths: 2-9ms compute, 1-8ms host phase.
			burstLen := simclock.Duration(2e6+splitmix64(&s)%8*1e6) * burstScale
			thinkLen := simclock.Duration(1e6+splitmix64(&s)%8*1e6) * thinkScale
			specs = append(specs, JobSpec{
				ID:        id,
				Tenant:    tenantName(tenant),
				Priority:  tenant % 3,
				Arrival:   at,
				Footprint: fp,
				Bursts:    bursts,
				BurstLen:  burstLen,
				ThinkLen:  thinkLen,
			})
			id++
			at += simclock.Duration(1 + splitmix64(&s)%uint64(cfg.meanGap()/4*3)) // jittered intra-burst gap
		}
		// Lull until the next burst.
		at += simclock.Duration(1 + splitmix64(&s)%uint64(2*cfg.burstEvery()))
	}
	return specs
}

func tenantName(t int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	if t < len(letters) {
		return "tenant-" + string(letters[t])
	}
	return "tenant-x"
}
