// Package snapifyio implements Snapify-IO, the RDMA-based remote file
// access service of Section 6.
//
// Snapify-IO consists of a user-level library and one long-running daemon
// per SCIF node. A process calls Open with a SCIF node ID, a path valid on
// that node, and an access mode; it gets back a file handle it can stream
// through (the real system returns a UNIX file descriptor that BLCR writes
// to directly — here the handle implements stream.Sink/stream.Source, which
// is the same role). The data path is the paper's, stage for stage:
//
//	user process ⇄ (UNIX socket) ⇄ local daemon ⇄ (4 MiB registered RDMA
//	buffer over SCIF) ⇄ remote daemon ⇄ remote file system
//
// The local handler fills the staging buffer, notifies the remote daemon
// with a SCIF message, the remote side moves the buffer with
// scif_vreadfrom/scif_vwriteto, touches the file system, and acknowledges
// so the buffer can be reused. Every leg charges its virtual cost, and the
// per-chunk stage costs are reported to the caller so the checkpointer can
// compose them into a pipelined end-to-end time.
//
// Beyond the paper's single staging buffer, a stream can be opened through
// OpenStream with several staging slots (double-buffering: the SCIF
// transfer of chunk k overlaps the local copy of chunk k+1, and a
// multi-slot read prefetches instead of serializing on one buffer) and
// with a *stripe* — a byte range of the remote file — so parallel streams
// can carry disjoint ranges of one capture concurrently. Striped writes
// are assembled by the remote daemon into a single file that becomes
// visible when the last stripe closes. Every open stream registers a bulk
// flow on the PCIe fabric, so concurrent streams honestly share link
// bandwidth (see simnet.RegisterFlow).
package snapifyio

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"snapify/internal/blob"
	"snapify/internal/obs"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/vfs"
)

// Port is the predetermined SCIF port every Snapify-IO daemon listens on.
const Port = 3500

// DefaultBufSize is the registered RDMA staging buffer size. The paper
// picks 4 MiB to balance memory footprint against transfer latency.
const DefaultBufSize = 4 * simclock.MiB

// MaxSlots bounds the staging slots of one stream (the wire protocol
// carries the slot index in a byte, and more than a handful of slots buys
// nothing once the transfer pipeline is full).
const MaxSlots = 16

// Mode is a file access mode. A handle is read-only or write-only, never
// both, matching snapifyio_open.
type Mode int

const (
	// Read opens a remote file for reading.
	Read Mode = iota
	// Write creates a remote file for writing.
	Write
)

func (m Mode) String() string {
	if m == Read {
		return "read"
	}
	return "write"
}

// Errors returned by the service.
var (
	ErrNoDaemon   = errors.New("snapifyio: no daemon on node")
	ErrFileClosed = errors.New("snapifyio: file closed")
)

// Stripe names a byte range of the remote file carried by one stream. The
// zero value means the stream carries the whole file (the classic mode).
type Stripe struct {
	// Offset is the first byte of the remote file this stream covers.
	Offset int64
	// Length is the stripe's size in bytes.
	Length int64
	// Total is the full remote file size. Required for write stripes (the
	// remote daemon sizes the assembled file from it); ignored for reads.
	Total int64
}

func (s Stripe) enabled() bool { return s != Stripe{} }

// OpenOptions parameterizes OpenStream.
type OpenOptions struct {
	// Slots is the number of registered staging slots. 1 (or 0) is the
	// paper's single-buffer ping-pong; 2 double-buffers so transfer and
	// local copy overlap. At most MaxSlots.
	Slots int
	// Stripe restricts the stream to a byte range of the remote file; the
	// zero value streams the whole file.
	Stripe Stripe
	// Store routes the stream's chunks into the target node's chunk
	// store instead of a plain file: each positioned chunk is verified
	// and deduplicated against the store, and the snapshot's manifest
	// commits when a negotiated upload (see Service.Negotiate) sees its
	// last missing chunk. Requires a stripe (chunks carry offsets) and a
	// store attached on the target.
	Store bool
}

// ChunkStore is the target-side repository a store-mode stream feeds.
// *snapstore.Store implements it; the indirection keeps snapifyio a
// pure transport with no dependency on the store's internals.
type ChunkStore interface {
	// Negotiate registers an upload and returns the chunk indices the
	// store lacks, or committed=true if the manifest committed on the
	// spot because every chunk was already resident.
	Negotiate(path, parent string, size, chunkBytes int64, digests []string) (need []int, committed bool, dur simclock.Duration, err error)
	// PutChunkAt stores one chunk-aligned piece of a negotiated upload.
	PutChunkAt(path string, off int64, content blob.Blob) (simclock.Duration, error)
	// CloseUpload commits the manifest if every chunk landed; otherwise
	// the upload stays pending for a retry.
	CloseUpload(path string) (committed bool, dur simclock.Duration, err error)
	// AbortUpload drops a pending upload (chunks already stored remain).
	AbortUpload(path string)
	// AbortAll drops every pending upload (daemon crash).
	AbortAll()
	// DigestPlan returns the digest list for path — the pending upload's
	// when one is in flight, else the committed manifest's — so a live
	// migration's destination can stage against it across rounds.
	DigestPlan(path string) (size, chunkBytes int64, digests []string, committed, ok bool, dur simclock.Duration)
}

// Service manages the per-node daemons of one Xeon Phi server.
type Service struct {
	net *scif.Network
	obs *obs.Obs

	// nextStreamID mints the service-wide stream IDs carried by the wire
	// protocol.
	nextStreamID atomic.Int64

	mu      sync.Mutex
	daemons map[simnet.NodeID]*Daemon
}

// NewService returns a service with no daemons running. o (which may be
// nil) receives per-stream metrics: open/abort counters, bytes moved,
// chunk-size histograms, and a per-node active-stream gauge collected at
// every metrics dump.
func NewService(net *scif.Network, o *obs.Obs) *Service {
	s := &Service{net: net, obs: o, daemons: make(map[simnet.NodeID]*Daemon)}
	o.MetricsOf().RegisterCollector(func(r *obs.Registry) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for node, d := range s.daemons {
			r.Gauge("snapifyio_active_streams",
				"Streams a Snapify-IO daemon is currently serving.",
				obs.L("node", node.String())).Set(int64(d.ActiveStreams()))
		}
	})
	return s
}

// Metrics returns the service's metrics registry (nil if the service was
// built without observability).
func (s *Service) Metrics() *obs.Registry { return s.obs.MetricsOf() }

// DumpMetrics sends the SIGUSR1-analogue control message to the daemon on
// targetNode from localNode and returns the daemon's Prometheus-style
// metrics exposition. The real snapifyiod dumps its counters on a signal;
// here the poke travels the same SCIF control path as any stream open.
func (s *Service) DumpMetrics(localNode, targetNode simnet.NodeID) (string, error) {
	ep, err := s.net.Connect(localNode, scif.Addr{Node: targetNode, Port: Port})
	if err != nil {
		return "", err
	}
	defer ep.Close() //nolint:errcheck // one-shot control round-trip; Recv already surfaced any peer error
	w := &wire{}
	w.u8(msgMetricsDump)
	if _, err := ep.Send(w.buf); err != nil {
		return "", err
	}
	raw, _, err := ep.Recv()
	if err != nil {
		return "", err
	}
	u, err := expect(raw, msgMetricsResp)
	if err != nil {
		return "", err
	}
	return u.str(), nil
}

// Discard asks the daemon on targetNode to drop the pending striped
// assembly of path, removing its partial file. Writers call it after
// exhausting their retries so a failed capture leaves no artifact; a
// discard of a path with no pending assembly is a no-op.
func (s *Service) Discard(localNode, targetNode simnet.NodeID, path string) error {
	ep, err := s.net.Connect(localNode, scif.Addr{Node: targetNode, Port: Port})
	if err != nil {
		return err
	}
	defer ep.Close() //nolint:errcheck // one-shot control round-trip; Recv already surfaced any peer error
	w := &wire{}
	w.u8(msgDiscard)
	w.str(path)
	if _, err := ep.Send(w.buf); err != nil {
		return err
	}
	raw, _, err := ep.Recv()
	if err != nil {
		return err
	}
	u, err := expect(raw, msgDiscardResp)
	if err != nil {
		return err
	}
	msg := u.str()
	if err := u.err(); err != nil {
		return err
	}
	if msg != "" {
		return &RemoteError{Node: targetNode, Path: path, Msg: msg}
	}
	return nil
}

// AttachStore mounts a chunk store on the daemon running on node:
// store-mode streams and have/need negotiations against that node are
// served from cs. Typically called once at platform bring-up, right
// after StartDaemon on the host.
func (s *Service) AttachStore(node simnet.NodeID, cs ChunkStore) error {
	d, err := s.Daemon(node)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.store = cs
	d.mu.Unlock()
	return nil
}

// Negotiate runs the have/need round of a dedup-aware capture: it sends
// the snapshot's chunk digests to the chunk store on targetNode and
// returns the indices of the chunks the store lacks. committed=true
// means the store already had every chunk and the manifest committed
// without a single data byte moving. dur is the virtual round-trip
// including the store's index scan.
func (s *Service) Negotiate(localNode, targetNode simnet.NodeID, path, parent string, size, chunkBytes int64, digests []string) (need []int, committed bool, dur simclock.Duration, err error) {
	ep, err := s.net.Connect(localNode, scif.Addr{Node: targetNode, Port: Port})
	if err != nil {
		return nil, false, 0, err
	}
	defer ep.Close() //nolint:errcheck // one-shot control round-trip; Recv already surfaced any peer error
	w := &wire{}
	w.u8(msgStoreNegotiate)
	w.str(path)
	w.str(parent)
	w.i64(size)
	w.i64(chunkBytes)
	w.i64(int64(len(digests)))
	for _, d := range digests {
		w.str(d)
	}
	sendDur, err := ep.Send(w.buf)
	if err != nil {
		return nil, false, 0, err
	}
	raw, recvDur, err := ep.Recv()
	if err != nil {
		return nil, false, 0, err
	}
	u, err := expect(raw, msgStoreNegotiateResp)
	if err != nil {
		return nil, false, 0, err
	}
	msg := u.str()
	committed = u.u8() == 1
	storeDur := u.dur()
	n := int(u.i64())
	for i := 0; i < n && !u.bad; i++ {
		need = append(need, int(u.i64()))
	}
	if err := u.err(); err != nil {
		return nil, false, 0, err
	}
	dur = sendDur + recvDur + storeDur
	if msg != "" {
		return nil, false, dur, &RemoteError{Node: targetNode, Path: path, Msg: msg}
	}
	return need, committed, dur, nil
}

// StagePlan fetches the digest plan for path from the chunk store on
// targetNode: the pending upload's digest list when a pre-copy round is
// in flight, else the committed manifest's. The destination card of a
// live migration calls this each round to learn what to stage, and once
// more at switch-over to verify the staged set against the committed
// manifest. ok=false (without error) means the store knows nothing
// about path.
func (s *Service) StagePlan(localNode, targetNode simnet.NodeID, path string) (size, chunkBytes int64, digests []string, committed, ok bool, dur simclock.Duration, err error) {
	ep, err := s.net.Connect(localNode, scif.Addr{Node: targetNode, Port: Port})
	if err != nil {
		return 0, 0, nil, false, false, 0, err
	}
	defer ep.Close() //nolint:errcheck // one-shot control round-trip; Recv already surfaced any peer error
	w := &wire{}
	w.u8(msgStoreDigests)
	w.str(path)
	sendDur, err := ep.Send(w.buf)
	if err != nil {
		return 0, 0, nil, false, false, 0, err
	}
	raw, recvDur, err := ep.Recv()
	if err != nil {
		return 0, 0, nil, false, false, 0, err
	}
	u, err := expect(raw, msgStoreDigestsResp)
	if err != nil {
		return 0, 0, nil, false, false, 0, err
	}
	msg := u.str()
	ok = u.u8() == 1
	committed = u.u8() == 1
	storeDur := u.dur()
	size = u.i64()
	chunkBytes = u.i64()
	n := int(u.i64())
	for i := 0; i < n && !u.bad; i++ {
		digests = append(digests, u.str())
	}
	if err := u.err(); err != nil {
		return 0, 0, nil, false, false, 0, err
	}
	dur = sendDur + recvDur + storeDur
	if msg != "" {
		return 0, 0, nil, false, false, dur, &RemoteError{Node: targetNode, Path: path, Msg: msg}
	}
	return size, chunkBytes, digests, committed, ok, dur, nil
}

// CrashDaemon crashes (and immediately restarts) the daemon on node:
// connections die, in-progress assemblies are discarded with their
// partial files. Test hook for the chaos tier; the injected Crash fault
// takes the same path.
func (s *Service) CrashDaemon(node simnet.NodeID) error {
	d, err := s.Daemon(node)
	if err != nil {
		return err
	}
	d.crash()
	return nil
}

// StartDaemon launches the Snapify-IO daemon on node, serving its local
// file system fs, with the default 4 MiB staging buffer.
func (s *Service) StartDaemon(node simnet.NodeID, fs vfs.NodeFS) (*Daemon, error) {
	return s.StartDaemonBuf(node, fs, DefaultBufSize)
}

// StartDaemonBuf launches a daemon with a specific staging buffer size
// (the ablation of the paper's 4 MiB choice sweeps this; all daemons of a
// service must agree or streams are rejected).
func (s *Service) StartDaemonBuf(node simnet.NodeID, fs vfs.NodeFS, bufSize int64) (*Daemon, error) {
	if bufSize <= 0 {
		return nil, fmt.Errorf("snapifyio: non-positive staging buffer %d", bufSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.daemons[node]; dup {
		return nil, fmt.Errorf("snapifyio: daemon already running on %v", node)
	}
	l, err := s.net.Listen(node, Port)
	if err != nil {
		return nil, fmt.Errorf("snapifyio: binding daemon port on %v: %w", node, err)
	}
	d := &Daemon{
		svc:        s,
		node:       node,
		fs:         fs,
		lst:        l,
		bufSize:    bufSize,
		done:       make(chan struct{}),
		assemblies: make(map[string]*assembly),
	}
	s.daemons[node] = d
	go d.remoteServer()
	return d, nil
}

// Daemon returns the daemon on node, or an error if none runs.
func (s *Service) Daemon(node simnet.NodeID) (*Daemon, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.daemons[node]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoDaemon, node)
	}
	return d, nil
}

// Open is the library entry point (snapifyio_open): a process on localNode
// opens the file at path on targetNode in the given mode. The returned
// handle streams through the local daemon with the paper's single staging
// buffer.
func (s *Service) Open(localNode, targetNode simnet.NodeID, path string, mode Mode) (*File, error) {
	return s.OpenStream(localNode, targetNode, path, mode, OpenOptions{})
}

// OpenStream opens a file handle with explicit staging and striping
// options (the multi-stream extension of snapifyio_open).
func (s *Service) OpenStream(localNode, targetNode simnet.NodeID, path string, mode Mode, opts OpenOptions) (*File, error) {
	d, err := s.Daemon(localNode)
	if err != nil {
		return nil, err
	}
	return d.open(targetNode, path, mode, opts)
}

// Stop shuts down all daemons.
func (s *Service) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for node, d := range s.daemons {
		d.lst.Close() //nolint:errcheck // service stop: a close error on the accept listener has no recovery
		close(d.done)
		delete(s.daemons, node)
		// Drop any assemblies still waiting for a resume so no partial
		// files outlive the service. Plain teardown, not crash(): a clean
		// stop is not an incident and must not trigger a flight dump.
		d.teardown()
	}
}
