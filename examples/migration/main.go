// Migration: a fault predictor flags a coprocessor, and the offload
// process moves to a healthy card (the paper's motivating scenario in
// Section 1) — transparently to the application, which keeps computing
// with the same handles.
//
// The move is a *live* migration: a pre-copy session ships the process
// image in rounds through the host's dedup store while the solver keeps
// iterating, and the process stops only for the final small delta. A
// stop-the-world migration of an identical solver runs afterwards for
// contrast, and an undisturbed reference run proves the restored state is
// byte-identical either way.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"snapify"
	"snapify/internal/proc"
)

func main() {
	snapify.RegisterBinary(solverBinary())
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 2})
	check(err)
	defer srv.Stop()

	live := launchSolver(srv, 1)
	defer live.app.Close()
	fmt.Printf("solver running on %v\n", live.app.Proc.DeviceNode())
	live.run(200)
	fmt.Println("200 iterations done")

	// The fault predictor (Section 1 cites online failure prediction)
	// flags mic0. Open a live-migration session and drive the pre-copy
	// rounds by hand, interleaving them with solver work — each burst of
	// iterations dirties a slice of the image for the next round to ship.
	fmt.Println("\n*** fault predictor: mic0 degradation imminent — live migration ***")
	m, err := snapify.NewMigration(live.app.Proc, snapify.MigrateOptions{
		DeviceTo: 2,
		Path:     "/migration/solver",
		Precopy: snapify.PrecopyOptions{
			MaxRounds:      4,
			DowntimeBudget: 50 * time.Millisecond,
		},
	})
	check(err)
	iters := uint64(200)
	for {
		rec, done, err := m.Round()
		check(err)
		if rec.Skipped {
			fmt.Printf("round %d: %s dirty — under the floor, left for the final delta\n",
				rec.Round, size(rec.DirtyBytes))
		} else {
			fmt.Printf("round %d: %s of %s dirty, shipped %s (%d/%d chunks after dedup)\n",
				rec.Round, size(rec.DirtyBytes), size(rec.ImageBytes),
				size(rec.ShippedBytes), rec.ChunksNeeded, rec.ChunksTotal)
		}
		if done {
			break
		}
		iters += 40
		live.run(iters) // the solver computes on while its image moves
	}
	_, err = m.Finish()
	check(err)
	snap := m.Snapshot()
	liveDown := snap.Report.Downtime
	fmt.Printf("switched over to %v: the solver stood still for only %.0fms\n",
		live.app.Proc.DeviceNode(), liveDown.Seconds()*1000)
	fmt.Printf("RDMA buffers re-registered: %d address(es) remapped\n", snap.Report.RemapEntries)

	// mic0 "fails"; the job never notices.
	final := live.run(500)
	fmt.Printf("\nsolver completed 500 iterations on the healthy card; residual checksum %d\n", final)

	// Cross-check against an undisturbed run: same binary, same input,
	// never migrated.
	ref := launchSolver(srv, 2)
	defer ref.app.Close()
	if r := ref.run(500); r == final {
		fmt.Printf("reference run agrees (%d): the migration was transparent\n", r)
	} else {
		fmt.Printf("MISMATCH: reference %d != migrated %d\n", r, final)
		os.Exit(1)
	}

	// Contrast: the paper's stop-the-world migration of an identical
	// solver — the process stands still for the whole capture and restore.
	fmt.Println("\n*** contrast: stop-the-world migration of a second solver ***")
	stw := launchSolver(srv, 1)
	defer stw.app.Close()
	stw.run(200)
	_, ssnap, err := snapify.Migrate(stw.app.Proc, snapify.MigrateOptions{
		DeviceTo: 2, Path: "/migration/solver_stw",
	})
	check(err)
	fmt.Printf("stop-the-world downtime %.2fs vs %.0fms live — %.0fx less standstill\n",
		ssnap.Report.Downtime.Seconds(), liveDown.Seconds()*1000,
		ssnap.Report.Downtime.Seconds()/liveDown.Seconds())
	if sf := stw.run(500); sf == final {
		fmt.Printf("both paths end in the same state (%d): byte-identical restores\n", sf)
	} else {
		fmt.Printf("MISMATCH: stop-the-world %d != live %d\n", sf, final)
		os.Exit(1)
	}
}

// solver bundles one launched iterative_solver application with its
// pipeline and input buffer.
type solver struct {
	app *snapify.Application
	pl  *snapify.Pipeline
	buf *snapify.Buffer
}

func launchSolver(srv *snapify.Server, device snapify.NodeID) *solver {
	app, err := srv.Launch("iterative_solver", device)
	check(err)
	pl, err := app.Proc.CreatePipeline()
	check(err)
	buf, err := app.Proc.CreateBuffer(8 << 20)
	check(err)
	seed := make([]byte, 1<<20)
	for i := range seed {
		seed[i] = byte(i * 31)
	}
	check(buf.Write(seed, 0))
	return &solver{app: app, pl: pl, buf: buf}
}

// run advances the solver to totalIters iterations and returns the
// residual checksum.
func (s *solver) run(totalIters uint64) uint64 {
	args := make([]byte, 12)
	binary.BigEndian.PutUint64(args, totalIters)
	binary.BigEndian.PutUint32(args[8:], uint32(s.buf.ID()))
	out, err := s.pl.RunFunction("iterate", args)
	check(err)
	return binary.BigEndian.Uint64(out)
}

func solverBinary() *snapify.Binary {
	bin := snapify.NewBinary("iterative_solver")
	bin.AddRegion("state", proc.RegionHeap, 256<<20, 0)
	bin.Register("iterate", func(ctx *snapify.RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		bufID := int(binary.BigEndian.Uint32(args[8:]))
		st := ctx.Region("state")
		data := ctx.Buffer(bufID)
		prog := make([]byte, 16)
		st.ReadAt(prog, 0)
		page := make([]byte, 4096)
		for {
			i := binary.BigEndian.Uint64(prog[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				data.ReadAt(page, int64(i%256)*4096)
				res := binary.BigEndian.Uint64(prog[8:])
				for _, v := range page {
					res = res*31 + uint64(v)
				}
				binary.BigEndian.PutUint64(prog[:8], i+1)
				binary.BigEndian.PutUint64(prog[8:], res)
				st.WriteAt(prog, 0)
				ctx.Compute(2 * time.Millisecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(prog, 0)
		copy(out, prog[8:])
		return out, nil
	})
	return bin
}

func size(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.0fKiB", float64(n)/(1<<10))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "migration:", err)
		os.Exit(1)
	}
}
