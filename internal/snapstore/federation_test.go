package snapstore

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/faultinject"
	"snapify/internal/hostfs"
	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// fedEnv is a federation over n fresh single-store hosts named h0..hN
// with a swappable injector, mirroring how the fleet arms chaos plans.
type fedEnv struct {
	fed   *Federation
	hosts map[string]*env
	inj   *faultinject.Injector
}

func newFedEnv(t *testing.T, n int) *fedEnv {
	t.Helper()
	fe := &fedEnv{hosts: make(map[string]*env)}
	fe.fed = NewFederation(obs.New(), DefaultLink(), func() *faultinject.Injector { return fe.inj })
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("h%d", i)
		m := simclock.Default()
		e := &env{fs: hostfs.New(m)}
		e.st = New(m, e.fs, obs.New(), func() *faultinject.Injector { return fe.inj })
		fe.hosts[name] = e
		if err := fe.fed.Add(name, e.st); err != nil {
			t.Fatalf("add %s: %v", name, err)
		}
	}
	return fe
}

func (fe *fedEnv) arm(p faultinject.Plan) { fe.inj = faultinject.New(p, nil) }
func (fe *fedEnv) disarm()                { fe.inj = nil }

// seedDir builds a replicable snapshot directory on host name: one
// plain file and one store-resident snapshot.
func (fe *fedEnv) seedDir(t *testing.T, name, dir string, seed byte, n int64) blob.Blob {
	t.Helper()
	e := fe.hosts[name]
	content := testContent(seed, n)
	if _, err := e.fs.WriteFile(dir+"/context_host", testContent(seed+100, 512)); err != nil {
		t.Fatalf("seed plain file: %v", err)
	}
	putAll(t, e, dir+"/ctx", "", content, 1024)
	return content
}

// assertFsckClean runs Verify on every living host's store.
func (fe *fedEnv) assertFsckClean(t *testing.T) {
	t.Helper()
	for name, e := range fe.hosts {
		if !fe.fed.Alive(name) {
			continue
		}
		if problems, _ := e.st.Verify(); len(problems) != 0 {
			t.Fatalf("host %s fsck: %v", name, problems)
		}
	}
}

// TestFederationShipDedup pins the tentpole's cross-host dedup: the
// first ship of a snapshot moves every chunk, re-shipping a similar
// snapshot moves only the delta.
func TestFederationShipDedup(t *testing.T) {
	fe := newFedEnv(t, 2)
	content := testContent(1, 8*1024)
	putAll(t, fe.hosts["h0"], "/snap/a", "", content, 1024)

	s1, _, err := fe.fed.ShipSnapshot("h0", "h1", "/snap/a")
	if err != nil {
		t.Fatalf("first ship: %v", err)
	}
	if s1.ChunksShipped != 8 || s1.ChunksDeduped != 0 {
		t.Fatalf("first ship = %+v, want 8 shipped", s1)
	}

	// A similar image: one chunk differs.
	similar := blob.Concat(testContent(99, 1024), content.Slice(1024, 7*1024))
	putAll(t, fe.hosts["h0"], "/snap/b", "", similar, 1024)
	s2, _, err := fe.fed.ShipSnapshot("h0", "h1", "/snap/b")
	if err != nil {
		t.Fatalf("second ship: %v", err)
	}
	if s2.ChunksShipped != 1 || s2.ChunksDeduped != 7 {
		t.Fatalf("second ship = %+v, want 1 shipped + 7 deduped", s2)
	}

	// Byte identity: the destination manifest lists the same digests and
	// assembles the same bytes.
	src, _, _ := fe.hosts["h0"].st.Manifest("/snap/b")
	dst, _, err := fe.hosts["h1"].st.Manifest("/snap/b")
	if err != nil {
		t.Fatalf("dst manifest: %v", err)
	}
	if !reflect.DeepEqual(src.Chunks, dst.Chunks) {
		t.Fatalf("manifest digests differ across hosts")
	}
	if got := readAll(t, fe.hosts["h1"], "/snap/b"); !blob.Equal(got, similar) {
		t.Fatalf("shipped snapshot content differs")
	}
	fe.assertFsckClean(t)
}

// TestFederationShipFileDedup checks whole-file dedup for plain files:
// identical content ships bytes exactly once per destination.
func TestFederationShipFileDedup(t *testing.T) {
	fe := newFedEnv(t, 2)
	content := testContent(2, 4096)
	if _, err := fe.hosts["h0"].fs.WriteFile("/libs/runtime", content); err != nil {
		t.Fatalf("seed: %v", err)
	}
	s1, _, err := fe.fed.ShipFile("h0", "h1", "/libs/runtime")
	if err != nil || s1.BytesShipped != 4096 {
		t.Fatalf("first ship = %+v, %v", s1, err)
	}
	s2, _, err := fe.fed.ShipFile("h0", "h1", "/libs/runtime")
	if err != nil || s2.BytesShipped != 0 || s2.ChunksDeduped != 1 {
		t.Fatalf("re-ship = %+v, %v (want deduped)", s2, err)
	}
}

// TestFederationReplicateAndHolders checks k-way replication placement:
// deterministic holder set of size k, content present on every holder.
func TestFederationReplicateAndHolders(t *testing.T) {
	fe := newFedEnv(t, 3)
	content := fe.seedDir(t, "h0", "/ckpt/job1", 3, 4*1024)

	holders, _, err := fe.fed.ReplicateDir("h0", "/ckpt/job1", 2)
	if err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if len(holders) != 2 || !contains(holders, "h0") {
		t.Fatalf("holders = %v, want h0 + 1 more", holders)
	}
	for _, h := range holders {
		if !fe.hosts[h].st.Has("/ckpt/job1/ctx") {
			t.Fatalf("holder %s missing snapshot", h)
		}
		if got := readAll(t, fe.hosts[h], "/ckpt/job1/ctx"); !blob.Equal(got, content) {
			t.Fatalf("holder %s content differs", h)
		}
		if !fe.hosts[h].fs.Exists("/ckpt/job1/context_host") {
			t.Fatalf("holder %s missing plain file", h)
		}
	}
	if lag := fe.fed.ReplicaLag(); lag != 0 {
		t.Fatalf("ReplicaLag = %d, want 0", lag)
	}
	// Replication is idempotent.
	again, _, err := fe.fed.ReplicateDir("h0", "/ckpt/job1", 2)
	if err != nil || !reflect.DeepEqual(again, holders) {
		t.Fatalf("re-replicate = %v, %v; want %v", again, err, holders)
	}
	fe.assertFsckClean(t)
}

// TestFederationKillAndRepair kills a holder and checks the repair loop
// re-establishes k from the surviving copy.
func TestFederationKillAndRepair(t *testing.T) {
	fe := newFedEnv(t, 3)
	fe.seedDir(t, "h0", "/ckpt/job1", 4, 4*1024)
	holders, _, err := fe.fed.ReplicateDir("h0", "/ckpt/job1", 2)
	if err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if err := fe.fed.KillHost(holders[0]); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if lag := fe.fed.ReplicaLag(); lag != 1 {
		t.Fatalf("ReplicaLag after kill = %d, want 1", lag)
	}
	rs, _, err := fe.fed.Repair(0)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rs.ReplicasAdded != 1 || rs.SetsLost != 0 {
		t.Fatalf("repair = %+v, want 1 replica added", rs)
	}
	if lag := fe.fed.ReplicaLag(); lag != 0 {
		t.Fatalf("ReplicaLag after repair = %d, want 0", lag)
	}
	if got := len(fe.fed.Holders("/ckpt/job1")); got != 2 {
		t.Fatalf("holders after repair = %d, want 2", got)
	}
	fe.assertFsckClean(t)
}

// TestFederationDeadHostRefused pins ErrHostDead on every op naming a
// killed member.
func TestFederationDeadHostRefused(t *testing.T) {
	fe := newFedEnv(t, 2)
	putAll(t, fe.hosts["h0"], "/snap/a", "", testContent(5, 1024), 1024)
	if err := fe.fed.KillHost("h1"); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if _, _, err := fe.fed.ShipSnapshot("h0", "h1", "/snap/a"); !errors.Is(err, ErrHostDead) {
		t.Fatalf("ship to dead host: %v, want ErrHostDead", err)
	}
	if _, _, err := fe.fed.ShipSnapshot("h1", "h0", "/snap/a"); !errors.Is(err, ErrHostDead) {
		t.Fatalf("ship from dead host: %v, want ErrHostDead", err)
	}
	if _, err := fe.fed.StoreOf("h1"); !errors.Is(err, ErrHostDead) {
		t.Fatalf("StoreOf dead host: %v, want ErrHostDead", err)
	}
	if got := fe.fed.Members(); !reflect.DeepEqual(got, []string{"h0"}) {
		t.Fatalf("Members = %v, want [h0]", got)
	}
}

// TestChaosFederationDestCrashMidNegotiate injects a destination-store
// crash during the have/need negotiation of a cross-host ship: the ship
// fails with ErrHostDead, nothing is torn on either side, and the ship
// retries cleanly against a surviving member.
func TestChaosFederationDestCrashMidNegotiate(t *testing.T) {
	fe := newFedEnv(t, 3)
	content := testContent(6, 4*1024)
	putAll(t, fe.hosts["h0"], "/snap/a", "", content, 1024)

	fe.arm(faultinject.Plan{{Site: faultinject.SiteFederation, Key: "negotiate", Kind: faultinject.Crash}})
	_, _, err := fe.fed.ShipSnapshot("h0", "h1", "/snap/a")
	if !errors.Is(err, ErrHostDead) {
		t.Fatalf("ship under crash: %v, want ErrHostDead", err)
	}
	if fe.fed.Alive("h1") {
		t.Fatalf("h1 still alive after injected crash")
	}
	fe.disarm()

	// Retry against a survivor: full ship, byte-identical.
	s, _, err := fe.fed.ShipSnapshot("h0", "h2", "/snap/a")
	if err != nil {
		t.Fatalf("retry ship: %v", err)
	}
	if s.ChunksShipped != 4 {
		t.Fatalf("retry shipped %d chunks, want 4", s.ChunksShipped)
	}
	if got := readAll(t, fe.hosts["h2"], "/snap/a"); !blob.Equal(got, content) {
		t.Fatalf("retry content differs")
	}
	fe.assertFsckClean(t)
}

// TestChaosFederationHostKillMidReplication kills the destination while
// replica chunks are in flight: ReplicateDir surfaces the death, the
// surviving stores stay fsck-clean with no pending uploads, and Repair
// re-establishes the target k on another host.
func TestChaosFederationHostKillMidReplication(t *testing.T) {
	fe := newFedEnv(t, 3)
	fe.seedDir(t, "h0", "/ckpt/job1", 7, 4*1024)

	// Fire on the 3rd cross-host transfer: mid-dir, after the plain file
	// and some chunks landed.
	fe.arm(faultinject.Plan{{Site: faultinject.SiteFederation, Key: "chunk", Kind: faultinject.Crash, Nth: 3}})
	_, _, err := fe.fed.ReplicateDir("h0", "/ckpt/job1", 2)
	if !errors.Is(err, ErrHostDead) {
		t.Fatalf("replicate under kill: %v, want ErrHostDead", err)
	}
	fe.disarm()

	if lag := fe.fed.ReplicaLag(); lag != 1 {
		t.Fatalf("ReplicaLag = %d, want 1 (set below target)", lag)
	}
	rs, _, err := fe.fed.Repair(0)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rs.ReplicasAdded != 1 {
		t.Fatalf("repair = %+v, want 1 replica added", rs)
	}
	holders := fe.fed.Holders("/ckpt/job1")
	if len(holders) != 2 {
		t.Fatalf("holders = %v, want 2", holders)
	}
	for _, h := range holders {
		if fe.hosts[h].st.PendingUploads() != 0 {
			t.Fatalf("holder %s has pending uploads", h)
		}
	}
	fe.assertFsckClean(t)
}

// TestChaosFederationRepairCrash crashes the repair loop mid-pass: the
// pass reports ErrInterrupted, and a re-run converges to target k —
// repair is idempotent like GC.
func TestChaosFederationRepairCrash(t *testing.T) {
	fe := newFedEnv(t, 4)
	fe.seedDir(t, "h0", "/ckpt/job1", 8, 4*1024)
	fe.seedDir(t, "h0", "/ckpt/job2", 9, 4*1024)
	for _, dir := range []string{"/ckpt/job1", "/ckpt/job2"} {
		if _, _, err := fe.fed.ReplicateDir("h0", dir, 2); err != nil {
			t.Fatalf("replicate %s: %v", dir, err)
		}
	}
	// Kill every non-h0 holder so both sets need repair.
	for _, dir := range []string{"/ckpt/job1", "/ckpt/job2"} {
		for _, h := range fe.fed.Holders(dir) {
			if h != "h0" {
				if err := fe.fed.KillHost(h); err != nil {
					t.Fatalf("kill %s: %v", h, err)
				}
			}
		}
	}
	lagBefore := fe.fed.ReplicaLag()
	if lagBefore == 0 {
		t.Fatalf("setup: expected lagging sets")
	}

	fe.arm(faultinject.Plan{{Site: faultinject.SiteFederation, Key: "repair", Kind: faultinject.Crash, Nth: 2}})
	_, _, err := fe.fed.Repair(0)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("repair under crash: %v, want ErrInterrupted", err)
	}
	fe.disarm()

	// Re-run converges.
	if _, _, err := fe.fed.Repair(0); err != nil {
		t.Fatalf("repair re-run: %v", err)
	}
	if lag := fe.fed.ReplicaLag(); lag != 0 {
		t.Fatalf("ReplicaLag after re-run = %d, want 0", lag)
	}
	fe.assertFsckClean(t)
}

// TestChaosFederationSeededDeterminism replays a seeded fault plan over
// the same replication scenario twice and requires identical outcomes —
// the federation keeps the chaos tier's determinism property.
func TestChaosFederationSeededDeterminism(t *testing.T) {
	menu := []faultinject.SiteKey{
		{Site: faultinject.SiteFederation, Key: "negotiate"},
		{Site: faultinject.SiteFederation, Key: "chunk"},
		{Site: faultinject.SiteFederation, Key: "repair"},
	}
	run := func(seed uint64) string {
		fe := newFedEnv(t, 3)
		fe.seedDir(t, "h0", "/ckpt/job1", 10, 4*1024)
		fe.arm(faultinject.SeededPlan(seed, menu, 3, 5))
		_, _, repErr := fe.fed.ReplicateDir("h0", "/ckpt/job1", 2)
		_, _, fixErr := fe.fed.Repair(0)
		return fmt.Sprintf("rep=%v fix=%v holders=%v lag=%d members=%v",
			repErr, fixErr, fe.fed.Holders("/ckpt/job1"), fe.fed.ReplicaLag(), fe.fed.Members())
	}
	for _, seed := range []uint64{1, 7, 0xC0FFEE} {
		a, b := run(seed), run(seed)
		if a != b {
			t.Fatalf("seed %d not deterministic:\n  %s\n  %s", seed, a, b)
		}
	}
}

// TestFederationPerPairLinks pins that SetLink overrides change only
// the overridden pair's shipping time: the same payload shipped over a
// slow cross-rack pair must cost more virtual time than over the
// default pair, and LinkBetween must fall back to the uniform link for
// pairs without an override.
func TestFederationPerPairLinks(t *testing.T) {
	fe := newFedEnv(t, 3)
	slow := CrossRackLink()
	fe.fed.SetLink("h0", "h2", slow)

	if got := fe.fed.LinkBetween("h0", "h1"); got != DefaultLink() {
		t.Fatalf("unoverridden pair: got %+v, want default", got)
	}
	if got := fe.fed.LinkBetween("h2", "h0"); got != slow {
		t.Fatalf("override not symmetric: got %+v", got)
	}
	if a, b := fe.fed.LinkCost("h0", "h2", 1<<20), fe.fed.LinkCost("h0", "h1", 1<<20); a <= b {
		t.Fatalf("cross-rack cost %v not above in-rack %v", a, b)
	}

	content := testContent(3, 8*1024)
	putAll(t, fe.hosts["h0"], "/snap/fast", "", content, 1024)
	putAll(t, fe.hosts["h0"], "/snap/slow", "", content, 1024)
	_, fastDur, err := fe.fed.ShipSnapshot("h0", "h1", "/snap/fast")
	if err != nil {
		t.Fatalf("fast ship: %v", err)
	}
	_, slowDur, err := fe.fed.ShipSnapshot("h0", "h2", "/snap/slow")
	if err != nil {
		t.Fatalf("slow ship: %v", err)
	}
	if slowDur <= fastDur {
		t.Fatalf("cross-rack ship %v not slower than in-rack %v", slowDur, fastDur)
	}
}

// TestFederationClosestHolder pins replica-locality queries: the
// cheapest living holder by per-pair link cost wins, ties break by
// name, a local copy wins outright, and dead holders are skipped.
func TestFederationClosestHolder(t *testing.T) {
	fe := newFedEnv(t, 4)
	fe.seedDir(t, "h0", "/ckpt/jobA", 5, 4*1024)
	holders, _, err := fe.fed.ReplicateDir("h0", "/ckpt/jobA", 3)
	if err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if len(holders) != 3 {
		t.Fatalf("holders = %v, want 3", holders)
	}
	// From a holder itself, the local copy wins with zero transfer.
	if got := fe.fed.ClosestHolder("/ckpt/jobA", holders[0], 1<<20); got != holders[0] {
		t.Fatalf("local holder: got %q, want %q", got, holders[0])
	}

	// Find a non-holder vantage point (fleet of 4, 3 holders).
	from := ""
	for _, n := range fe.fed.Members() {
		if !contains(holders, n) {
			from = n
		}
	}
	if from == "" {
		t.Fatalf("no non-holder member among %v", fe.fed.Members())
	}
	// Uniform links: ties break by name — the first sorted holder.
	if got := fe.fed.ClosestHolder("/ckpt/jobA", from, 1<<20); got != holders[0] {
		t.Fatalf("uniform tie-break: got %q, want %q", got, holders[0])
	}
	// Make every pair from `from` slow except to the last holder: that
	// holder becomes closest despite sorting last.
	for _, h := range holders[:len(holders)-1] {
		fe.fed.SetLink(from, h, CrossRackLink())
	}
	want := holders[len(holders)-1]
	if got := fe.fed.ClosestHolder("/ckpt/jobA", from, 1<<20); got != want {
		t.Fatalf("link-aware pick: got %q, want %q", got, want)
	}
	// Kill the closest holder: the query must skip it.
	if err := fe.fed.KillHost(want); err != nil {
		t.Fatalf("kill %s: %v", want, err)
	}
	if got := fe.fed.ClosestHolder("/ckpt/jobA", from, 1<<20); got == want || got == "" {
		t.Fatalf("dead holder not skipped: got %q", got)
	}
	if got := fe.fed.ClosestHolder("/no/such/dir", from, 1); got != "" {
		t.Fatalf("unknown dir: got %q, want empty", got)
	}
}
