// Package experiments implements the paper's evaluation (Section 7): one
// driver per table and figure, each running the real protocol stack on the
// simulated platform and reporting virtual-time results in the paper's
// format. cmd/snapbench prints them; bench_test.go wraps them as Go
// benchmarks; the integration tests assert the qualitative shapes the
// paper reports.
package experiments

import (
	"fmt"
	"io"

	"snapify/internal/blob"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/stream"
	"snapify/internal/trace"
)

// newPlatform builds the standard single-server testbed (Table 2: one or
// two 8 GiB cards).
func newPlatform(devices int) (*platform.Platform, error) {
	return platform.New(platform.Config{Server: phi.ServerConfig{
		Devices: devices,
		Device:  phi.DeviceConfig{MemBytes: 8 * simclock.GiB},
	}})
}

// Table2 renders the testbed configuration.
func Table2() string {
	t := trace.New("Table 2: Characteristics of the (simulated) Xeon Phi server",
		"", "Host Processor", "Coprocessor")
	t.Row("CPU", "Intel E5-2630 @ 2.30GHz", "Intel Xeon Phi 5110P")
	t.Row("Cores", "6 physical cores (12 threads)", "60 physical cores (240 threads)")
	t.Row("Memory", "32GB", "8GB per coprocessor")
	t.Row("OS", "Linux RHEL 6.2 (simulated)", "Linux 2.6.38.8 MPSS 2.1 (simulated)")
	t.Row("Number", "2 CPU sockets", "2 coprocessors")
	return t.String()
}

// drainSink streams content into a sink through a pipeline accumulator and
// returns the virtual time. writeSize is the producer's write granularity.
func drainSink(sink stream.Sink, content blob.Blob, writeSize int64, producer func(int64) simclock.Duration) (simclock.Duration, error) {
	acc := simclock.NewPipelineAccum()
	err := content.ForEachChunk(writeSize, func(c blob.Blob) error {
		cost, err := sink.WriteBlob(c)
		if err != nil {
			return err
		}
		if producer != nil {
			stream.Observe(acc, cost, producer(c.Len()))
		} else {
			stream.Observe(acc, cost)
		}
		return nil
	})
	if err != nil {
		sink.Abort()
		return 0, err
	}
	if err := sink.Close(); err != nil {
		return 0, err
	}
	return acc.Total(), nil
}

// drainSource reads a source to exhaustion and returns content + time.
func drainSource(src stream.Source, readSize int64, producer func(int64) simclock.Duration) (blob.Blob, simclock.Duration, error) {
	acc := simclock.NewPipelineAccum()
	var parts []blob.Blob
	for {
		c, cost, err := src.Next(readSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			return blob.Blob{}, 0, err
		}
		if producer != nil {
			stream.Observe(acc, cost, producer(c.Len()))
		} else {
			stream.Observe(acc, cost)
		}
		parts = append(parts, c)
	}
	return blob.Concat(parts...), acc.Total(), nil
}

// sizeLabel formats an experiment size like the paper's tables (1MB..4GB).
func sizeLabel(n int64) string {
	if n >= simclock.GiB {
		return fmt.Sprintf("%dGB", n/simclock.GiB)
	}
	return fmt.Sprintf("%dMB", n/simclock.MiB)
}
