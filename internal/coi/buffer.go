package coi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"snapify/internal/blob"
)

// Buffer is the host-side handle to a COI buffer: memory in the offload
// process (backed by local-store files on the card, Section 2) that the
// host moves data into and out of with SCIF RDMA.
type Buffer struct {
	cp   *Process
	id   int
	size int64

	// rdmaOff is the buffer's current RDMA address in the offload
	// process's registered window. A restore re-registers the window and
	// the address changes — Snapify's remap table rewrites this field
	// (Section 4.3).
	rdmaOff int64
}

// CreateBuffer allocates a COI buffer of size bytes in the offload process
// (COIBufferCreate). The backing local store draws on card memory, so
// creation fails when the card is full.
func (cp *Process) CreateBuffer(size int64) (*Buffer, error) {
	cp.mu.Lock()
	id := cp.nextBufID
	cp.nextBufID++
	cmd := cp.cmds["command"]
	cp.mu.Unlock()
	if cmd == nil {
		return nil, errors.New("coi: command channel not connected")
	}
	req := append([]byte{cmdBufferCreate}, putU32(uint32(id))...)
	req = binary.BigEndian.AppendUint64(req, uint64(size))
	reply, err := cmd.Request(req)
	if err != nil {
		return nil, err
	}
	if reply[0] != 0 {
		return nil, fmt.Errorf("coi: buffer create failed: %s", reply[1:])
	}
	b := &Buffer{
		cp:      cp,
		id:      id,
		size:    size,
		rdmaOff: int64(binary.BigEndian.Uint64(reply[1:])),
	}
	cp.mu.Lock()
	cp.buffers[id] = b
	cp.mu.Unlock()
	return b, nil
}

// ID returns the buffer id.
func (b *Buffer) ID() int { return b.id }

// Size returns the buffer size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// RDMAAddr returns the buffer's current RDMA address (tests assert the
// remap after restore).
func (b *Buffer) RDMAAddr() int64 { return b.rdmaOff }

// Destroy releases the buffer (COIBufferDestroy).
func (b *Buffer) Destroy() error {
	cp := b.cp
	cmd := cp.Command("command")
	if cmd == nil {
		return errors.New("coi: command channel not connected")
	}
	reply, err := cmd.Request(append([]byte{cmdBufferDestroy}, putU32(uint32(b.id))...))
	if err != nil {
		return err
	}
	if reply[0] != 0 {
		return fmt.Errorf("coi: buffer destroy failed: %s", reply[1:])
	}
	cp.mu.Lock()
	delete(cp.buffers, b.id)
	cp.mu.Unlock()
	return nil
}

// bytesMemory adapts a mutable byte slice to scif.Memory for host-side
// staging of buffer reads and writes.
type bytesMemory struct{ p []byte }

func (m bytesMemory) Size() int64 { return int64(len(m.p)) }

func (m bytesMemory) SnapshotRange(off, n int64) blob.Blob {
	return blob.FromBytes(m.p[off : off+n])
}

func (m bytesMemory) WriteBlob(off int64, src blob.Blob) {
	copy(m.p[off:], src.Bytes())
}

// Write copies data into the buffer at off via RDMA (COIBufferWrite: the
// "in" clause data transfer before an offload region).
func (b *Buffer) Write(data []byte, off int64) error {
	return b.rdma(func() error {
		d, err := b.cp.dmaEP.VWriteTo(bytesMemory{data}, 0, int64(len(data)), b.rdmaOff+off)
		b.cp.tl.Advance(d)
		return err
	})
}

// Read copies len(p) bytes out of the buffer at off via RDMA
// (COIBufferRead: the "out" clause transfer after an offload region).
func (b *Buffer) Read(p []byte, off int64) error {
	return b.rdma(func() error {
		d, err := b.cp.dmaEP.VReadFrom(bytesMemory{p}, 0, int64(len(p)), b.rdmaOff+off)
		b.cp.tl.Advance(d)
		return err
	})
}

// WriteBlob copies blob content into the buffer at off, preserving
// synthetic extents (bulk initialization of large inputs).
func (b *Buffer) WriteBlob(content blob.Blob, off int64) error {
	return b.rdma(func() error {
		mem := blobMemory{content}
		d, err := b.cp.dmaEP.VWriteTo(mem, 0, content.Len(), b.rdmaOff+off)
		b.cp.tl.Advance(d)
		return err
	})
}

// blobMemory adapts an immutable blob to scif.Memory (source-only).
type blobMemory struct{ b blob.Blob }

func (m blobMemory) Size() int64                          { return m.b.Len() }
func (m blobMemory) SnapshotRange(off, n int64) blob.Blob { return m.b.Slice(off, n) }
func (m blobMemory) WriteBlob(int64, blob.Blob)           { panic("coi: write into immutable blob") } //nolint:paniclib // interface contract: restore sources are read-only by construction

// rdma runs one RDMA call site inside the case-2 critical region.
func (b *Buffer) rdma(op func() error) error {
	cp := b.cp
	if s := cp.State(); s == StateSwapped || s == StateDestroyed {
		return fmt.Errorf("%w: %s", ErrProcessGone, s)
	}
	cp.rdmaMu.Lock()
	defer cp.rdmaMu.Unlock()
	if cp.hooks() {
		cp.tl.Advance(cp.plat.Model().HookRDMACall)
	}
	return op()
}
