// Command snapifyiod demonstrates the standalone Snapify-IO daemon
// (Section 6): one long-running daemon per SCIF node serving remote file
// I/O over RDMA. The demo boots a server, and streams files in both
// directions and device-to-device, printing the per-stage virtual costs —
// the data path a BLCR context file takes when Snapify captures or
// restores an offload process.
package main

import (
	"fmt"
	"io"
	"os"

	"snapify"
	"snapify/internal/blob"
	"snapify/internal/simclock"
	"snapify/internal/snapifyio"
	"snapify/internal/stream"
)

func main() {
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 2})
	fatal(err)
	defer srv.Stop()
	plat := srv.Platform
	fmt.Println("Snapify-IO daemons running on host, mic0, mic1 (SCIF port 3500)")
	fmt.Printf("staging buffer: %d MiB registered RDMA window per stream\n\n", snapifyio.DefaultBufSize/simclock.MiB)

	const size = 256 * simclock.MiB
	content := blob.Synthetic(42, size)
	if _, err := plat.Device(1).FS.WriteFile("/tmp/payload", content); err != nil {
		fatal(err)
	}

	// Device -> host: the checkpoint direction.
	f, err := plat.IO.Open(1, 0, "/demo/ckpt", snapifyio.Write)
	fatal(err)
	acc := simclock.NewPipelineAccum()
	src, err := plat.Device(1).FS.Open("/tmp/payload")
	fatal(err)
	for {
		chunk, rd, err := src.Next(4 * simclock.MiB)
		if err == io.EOF {
			break
		}
		fatal(err)
		cost, err := f.WriteBlob(chunk)
		fatal(err)
		stream.Observe(acc, cost, rd)
	}
	fatal(f.Close())
	fmt.Printf("mic0 -> host   %4dMiB  %8.2fs  (socket -> 4MiB RDMA buffer -> scif_vreadfrom -> host fs)\n",
		size/simclock.MiB, acc.Total().Seconds())

	// Host -> device: the restore direction.
	fr, err := plat.IO.Open(1, 0, "/demo/ckpt", snapifyio.Read)
	fatal(err)
	acc = simclock.NewPipelineAccum()
	var got []blob.Blob
	for {
		chunk, cost, err := fr.Next(4 * simclock.MiB)
		if err == io.EOF {
			break
		}
		fatal(err)
		stream.Observe(acc, cost)
		got = append(got, chunk)
	}
	fatal(fr.Close())
	if !blob.Equal(blob.Concat(got...), content) {
		fatal(fmt.Errorf("content mismatch after round trip"))
	}
	fmt.Printf("host -> mic0   %4dMiB  %8.2fs  (request-response over the single staging buffer: slower, as in the paper)\n",
		size/simclock.MiB, acc.Total().Seconds())

	// Device -> device: the migration local-store path.
	fw, err := plat.IO.Open(1, 2, "/tmp/migrated", snapifyio.Write)
	fatal(err)
	acc = simclock.NewPipelineAccum()
	src2, err := plat.Device(1).FS.Open("/tmp/payload")
	fatal(err)
	for {
		chunk, rd, err := src2.Next(4 * simclock.MiB)
		if err == io.EOF {
			break
		}
		fatal(err)
		cost, err := fw.WriteBlob(chunk)
		fatal(err)
		stream.Observe(acc, cost, rd)
	}
	fatal(fw.Close())
	fmt.Printf("mic0 -> mic1   %4dMiB  %8.2fs  (peer-to-peer through the root complex)\n",
		size/simclock.MiB, acc.Total().Seconds())

	fmt.Printf("\nPCIe traffic observed: mic0->host %s, host->mic0 %s, mic0->mic1 %s\n",
		fmtBytes(plat.Server.Fabric.Traffic(1, 0)),
		fmtBytes(plat.Server.Fabric.Traffic(0, 1)),
		fmtBytes(plat.Server.Fabric.Traffic(1, 2)))

	// The SIGUSR1 analogue: a control message on the daemon's SCIF port
	// makes it dump the service metrics registry (real daemons can't be
	// signalled from another node, so the dump rides the wire).
	text, err := plat.IO.DumpMetrics(0, 1)
	fatal(err)
	fmt.Printf("\n--- metrics dump from mic0's daemon (control message on port %d) ---\n%s", snapifyio.Port, text)
}

func fmtBytes(n int64) string { return fmt.Sprintf("%dMiB", n/simclock.MiB) }

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapifyiod:", err)
		os.Exit(1)
	}
}
