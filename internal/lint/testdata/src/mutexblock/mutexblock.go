// Package mutexblock is a golden fixture for the mutexblock analyzer.
package mutexblock

import (
	"sync"

	"snapify/internal/scif"
)

type server struct {
	mu sync.Mutex
	ch chan int
}

func (s *server) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func (s *server) recvHeldByDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock() // defer keeps the mutex held for the rest of the body
	return <-s.ch       // want "channel receive while holding s.mu"
}

func (s *server) selectHeld() {
	s.mu.Lock()
	select { // want "select while holding s.mu"
	case v := <-s.ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

func (s *server) scifHeld(ep *scif.Endpoint) {
	s.mu.Lock()
	_, _ = ep.Send(nil) // want "SCIF call Endpoint.Send while holding s.mu"
	s.mu.Unlock()
}

func (s *server) released() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1 // lock released before the send: no finding
}

func (s *server) nonBlockingUnderLock(ep *scif.Endpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _, _, _ = ep.TryRecv() // non-blocking probe: not in scifBlocking
	_ = ep.Close()            // local teardown: not in scifBlocking
}

func (s *server) litStartsClean() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The literal runs later, under its own empty held set.
	return func() { s.ch <- 1 }
}

func (s *server) suppressed() {
	s.mu.Lock()
	s.ch <- 1 //nolint:mutexblock // golden fixture: a justified directive suppresses the finding
	s.mu.Unlock()
}
