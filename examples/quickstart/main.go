// Quickstart: the paper's programming model end to end — build an offload
// application, run it, take a consistent snapshot with the five Snapify
// primitives (Table 1), and restore it.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"snapify"
	"snapify/internal/proc"
)

func main() {
	// 1. Register the device binary: one offload region ("dotstep") that
	//    accumulates a dot product, one resumable step at a time, with all
	//    progress in device memory — the property that makes snapshots
	//    taken mid-offload-region restorable.
	bin := snapify.NewBinary("quickstart")
	bin.AddRegion("state", proc.RegionHeap, 1<<20, 0)
	bin.Register("dotstep", func(ctx *snapify.RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		bufID := int(binary.BigEndian.Uint32(args[8:]))
		st := ctx.Region("state")
		vec := ctx.Buffer(bufID)
		prog := make([]byte, 16)
		st.ReadAt(prog, 0)
		elem := make([]byte, 8)
		for {
			i := binary.BigEndian.Uint64(prog[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				vec.ReadAt(elem, int64(i)*8)
				v := binary.BigEndian.Uint64(elem)
				acc := binary.BigEndian.Uint64(prog[8:])
				binary.BigEndian.PutUint64(prog[:8], i+1)
				binary.BigEndian.PutUint64(prog[8:], acc+v*v)
				st.WriteAt(prog, 0)
				ctx.Compute(50 * time.Microsecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(prog, 0)
		copy(out, prog[8:])
		return out, nil
	})
	snapify.RegisterBinary(bin)

	// 2. Boot a Xeon Phi server and launch the application on card 1.
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 1})
	check(err)
	defer srv.Stop()
	app, err := srv.Launch("quickstart", 1)
	check(err)
	defer app.Close()

	// 3. Move input data into a COI buffer (the offload pragma's "in"
	//    clause) and run the offload region.
	const n = 4096
	buf, err := app.Proc.CreateBuffer(n * 8)
	check(err)
	input := make([]byte, n*8)
	var want uint64
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(input[i*8:], uint64(i))
		want += uint64(i) * uint64(i)
	}
	check(buf.Write(input, 0))

	pl, err := app.Proc.CreatePipeline()
	check(err)
	args := make([]byte, 12)
	binary.BigEndian.PutUint64(args, n/2) // first half only
	binary.BigEndian.PutUint32(args[8:], uint32(buf.ID()))
	_, err = pl.RunFunction("dotstep", args)
	check(err)
	fmt.Println("ran the offload region over the first half of the vector")

	// 4. Snapshot: pause (drain every SCIF channel), capture (async, via
	//    four parallel Snapify-IO streams to the host), wait, resume.
	s := snapify.NewSnapshot("/snapshots/quickstart", app.Proc)
	check(snapify.Pause(s))
	check(snapify.Capture(s, snapify.CaptureOptions{Streams: 4}))
	check(snapify.Wait(s))
	check(snapify.Resume(s))
	fmt.Printf("snapshot captured: %s of process image in %.2fs virtual (pause %.0fms, capture %.2fs over %d streams)\n",
		mib(s.Report.SnapshotBytes), (s.Report.PauseTotal() + s.Report.Capture).Seconds(),
		s.Report.PauseTotal().Seconds()*1000, s.Report.Capture.Seconds(), s.Report.CaptureStreams)

	// 5. Keep computing, then throw the offload process away (swap-out)
	//    and restore it from the snapshot — the computation continues
	//    where the *snapshot* left it.
	binary.BigEndian.PutUint64(args, n)
	out, err := pl.RunFunction("dotstep", args)
	check(err)
	got := binary.BigEndian.Uint64(out)
	fmt.Printf("finished the run: dot = %d (want %d)\n", got, want)

	swap, err := snapify.Swapout("/snapshots/quickstart_swap", app.Proc, snapify.CaptureOptions{})
	check(err)
	fmt.Println("swapped out: card memory freed, process lives on host storage")
	_, err = snapify.Swapin(swap, 1, snapify.RestoreOptions{})
	check(err)
	out, err = pl.RunFunction("dotstep", args)
	check(err)
	fmt.Printf("after swap-in: dot = %d — identical, the snapshot was consistent\n",
		binary.BigEndian.Uint64(out))
}

func mib(n int64) string { return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20)) }

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
