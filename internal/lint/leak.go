package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared acquire/release dataflow engine behind the
// spanleak and closeleak analyzers. Both enforce the same shape of
// invariant — a call hands out an obligation (an open span, an open
// handle) that must be discharged on every path out of the function — so
// they differ only in what counts as an acquire, which methods discharge
// it, and how findings are worded. The analysis is a forward may-analysis
// over the function's CFG: facts are still-live obligations, a release
// call (direct or deferred) kills, and any escape — returning the value,
// storing it beyond a local, passing it to another function, capturing it
// in a closure — conservatively kills too, because ownership has moved to
// someone this intraprocedural pass cannot see. What survives at a
// function exit is a leak.

// A leakFact is one live obligation: the local holding the resource, the
// acquire site, and a rendered description for the finding message.
// pendingErr, when set, is the error variable assigned alongside the
// resource (`f, err := Open(...)`): until that error is known nil the
// handle may be invalid, so the obligation is conditional. An
// Assume{err != nil} CFG node kills the fact (failed acquire, nothing to
// release); an Assume{err == nil} or a reassignment of the error variable
// activates it.
type leakFact struct {
	obj        types.Object
	pendingErr types.Object
	pos        token.Pos
	desc       string
}

// A leakSpec configures one instantiation of the engine.
type leakSpec struct {
	// isAcquire reports whether a resolved call can hand out a tracked
	// resource (the assigned variable's type still has to satisfy
	// isResource — `Open` also returns an error).
	isAcquire func(p *Pass, f *types.Func) bool
	// isResource reports whether a variable of type t carries the
	// obligation.
	isResource func(t types.Type) bool
	// release names the methods that discharge the obligation.
	release map[string]bool
	// describe renders the acquired resource for messages.
	describe func(p *Pass, call *ast.CallExpr, f *types.Func, obj types.Object) string
	// verb is the past participle of discharging ("ended", "released").
	verb string
	// advice closes the finding message.
	advice string
}

// runLeak applies the spec to every function declaration and literal of
// the pass's package.
func runLeak(p *Pass, spec *leakSpec) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLeakBody(p, spec, fn.Body)
				}
			case *ast.FuncLit:
				// A literal body is its own analysis scope: obligations
				// acquired inside it must be discharged inside it (an
				// acquire in the enclosing function that the literal
				// releases is handled there, as a capture escape).
				checkLeakBody(p, spec, fn.Body)
			}
			return true
		})
	}
}

type leakChecker struct {
	pass *Pass
	spec *leakSpec
	info *types.Info
}

func checkLeakBody(p *Pass, spec *leakSpec, body *ast.BlockStmt) {
	// Cheap pre-scan: most functions acquire nothing.
	hasAcquire := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if f := calleeFunc(p.Pkg.Info, call); f != nil && spec.isAcquire(p, f) {
				hasAcquire = true
			}
		}
		return !hasAcquire
	})
	if !hasAcquire {
		return
	}

	c := &leakChecker{pass: p, spec: spec, info: p.Pkg.Info}
	cfg := p.Prog.CFGOf(body)
	in := SolveForward(cfg, Facts{}, c.transfer)

	reported := map[[2]token.Pos]bool{}
	for _, b := range cfg.Blocks {
		if !hasSucc(b, cfg.Exit) {
			continue
		}
		// Replay the block to get the facts still live as control leaves.
		facts := in[b].Clone()
		for _, n := range b.Nodes {
			facts = c.transfer(n, facts)
		}
		if len(facts) == 0 {
			continue
		}
		exitPos, ok := leakExitPos(b, body)
		if !ok {
			continue // panic or goto: not a path the invariant patrols
		}
		line := p.Fset().Position(exitPos).Line
		for _, f := range sortedLeakFacts(facts) {
			key := [2]token.Pos{f.pos, exitPos}
			if reported[key] {
				continue
			}
			reported[key] = true
			p.Reportf(f.pos, "%s is not %s on the path leaving the function at line %d: %s",
				f.desc, spec.verb, line, spec.advice)
		}
	}
}

func hasSucc(b *Block, s *Block) bool {
	for _, have := range b.Succs {
		if have == s {
			return true
		}
	}
	return false
}

// leakExitPos classifies how a block reaches the exit: a return (report at
// the return), falling off the end of the body (report at the closing
// brace), or a panic/goto (not reported — a panicking process is past
// caring about its spans and handles, and goto edges are conservative CFG
// artifacts).
func leakExitPos(b *Block, body *ast.BlockStmt) (token.Pos, bool) {
	if len(b.Nodes) == 0 {
		return body.Rbrace, true
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return last.Pos(), true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok && isPanicCall(call) {
			return token.NoPos, false
		}
	case *ast.BranchStmt:
		if last.Tok == token.GOTO {
			return token.NoPos, false
		}
	}
	return body.Rbrace, true
}

func sortedLeakFacts(facts Facts) []leakFact {
	var out []leakFact
	for k := range facts {
		if f, ok := k.(leakFact); ok {
			out = append(out, f)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].pos < out[j-1].pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// transfer is the dataflow transfer function. Gen: an acquire call whose
// result lands in a simple local. Kill: a release method call on the
// local, or any escape of the local.
func (c *leakChecker) transfer(n ast.Node, in Facts) Facts {
	switch stmt := n.(type) {
	case *Assume:
		c.assume(stmt, in)
		return in
	case *ast.AssignStmt:
		for _, rhs := range stmt.Rhs {
			c.scanKills(rhs, in)
		}
		// Reassigning an error variable resolves every fact still pending
		// on it: whatever that error reported, its acquire is history now.
		for _, lhs := range stmt.Lhs {
			if obj := assignedObj(c.info, lhs); obj != nil {
				activatePending(in, obj)
			}
		}
		for i, lhs := range stmt.Lhs {
			var rhs ast.Expr
			if len(stmt.Rhs) == len(stmt.Lhs) {
				rhs = stmt.Rhs[i]
			} else if len(stmt.Rhs) == 1 {
				rhs = stmt.Rhs[0]
			}
			c.assign(stmt, lhs, rhs, in)
		}
		return in
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					c.scanKills(v, in)
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					c.assign(nil, name, rhs, in)
				}
			}
		}
		return in
	}
	c.scanKills(n, in)
	return in
}

// assume refines conditional facts on a branch guard: on the path where a
// fact's paired error is non-nil the acquire failed and the obligation
// vanishes; on the path where it is nil the obligation becomes
// unconditional.
func (c *leakChecker) assume(a *Assume, in Facts) {
	id, nonNil, ok := a.AssumeNilness()
	if !ok {
		return
	}
	obj := c.info.Uses[id]
	if obj == nil || !isErrorType(obj.Type()) {
		return
	}
	for k := range in {
		f, isFact := k.(leakFact)
		if !isFact || f.pendingErr != obj {
			continue
		}
		delete(in, k)
		if !nonNil {
			f.pendingErr = nil
			in[f] = true
		}
	}
}

// activatePending makes unconditional every fact still pending on obj.
func activatePending(in Facts, obj types.Object) {
	for k := range in {
		if f, ok := k.(leakFact); ok && f.pendingErr == obj {
			delete(in, k)
			f.pendingErr = nil
			in[f] = true
		}
	}
}

// assign processes one lhs/rhs pair of an assignment or value spec. stmt,
// when non-nil, is the enclosing assignment — used to find the error
// variable assigned alongside a tuple-returning acquire.
func (c *leakChecker) assign(stmt *ast.AssignStmt, lhs, rhs ast.Expr, in Facts) {
	obj := assignedObj(c.info, lhs)
	if obj == nil {
		// Storing into a field, index, or dereference: a bare identifier
		// on the right escapes (scanKills only catches nested uses).
		if rhs != nil {
			if src := assignedObj(c.info, rhs); src != nil {
				killLeakObj(in, src)
			}
		}
		return
	}
	if rhs == nil {
		return
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		f := calleeFunc(c.info, call)
		if f != nil && c.spec.isAcquire(c.pass, f) && c.spec.isResource(obj.Type()) {
			fact := leakFact{obj: obj, pos: call.Pos(), desc: c.spec.describe(c.pass, call, f, obj)}
			if stmt != nil {
				for _, other := range stmt.Lhs {
					if sib := assignedObj(c.info, other); sib != nil && sib != obj && isErrorType(sib.Type()) {
						fact.pendingErr = sib
						break
					}
				}
			}
			in[fact] = true
		}
		return
	}
	// Aliasing: `w := f` moves the obligation to the new name.
	if src := assignedObj(c.info, ast.Unparen(rhs)); src != nil {
		for k := range in {
			if f, ok := k.(leakFact); ok && f.obj == src {
				delete(in, k)
				f.obj = obj
				in[f] = true
			}
		}
	}
}

// scanKills walks an expression or statement for release calls and
// escapes of tracked locals.
func (c *leakChecker) scanKills(n ast.Node, in Facts) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && c.spec.release[sel.Sel.Name] {
				if obj := assignedObj(c.info, sel.X); obj != nil {
					killLeakObj(in, obj)
				}
			}
			// Passing the resource to any function hands ownership over.
			for _, a := range e.Args {
				if obj := assignedObj(c.info, a); obj != nil {
					killLeakObj(in, obj)
				}
			}
		case *ast.ReturnStmt:
			// Whatever a result expression mentions is the caller's now.
			for _, r := range e.Results {
				killLeakIdents(c.info, r, in)
			}
			return false
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				killLeakIdents(c.info, el, in)
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if obj := assignedObj(c.info, e.X); obj != nil {
					killLeakObj(in, obj)
				}
			}
		case *ast.FuncLit:
			// Captured by a closure that may discharge it later.
			killLeakIdents(c.info, e.Body, in)
			return false
		}
		return true
	})
}

// killLeakObj removes every fact tracking obj.
func killLeakObj(in Facts, obj types.Object) {
	for k := range in {
		if f, ok := k.(leakFact); ok && f.obj == obj {
			delete(in, k)
		}
	}
}

// killLeakIdents removes facts for every identifier mentioned under n.
func killLeakIdents(info *types.Info, n ast.Node, in Facts) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				killLeakObj(in, obj)
			}
		}
		return true
	})
}

// hasReleaseMethod reports whether t (addressably) exposes any method
// with one of the given names — the type-level test for "this value is a
// closable resource".
func hasReleaseMethod(t types.Type, names []string) bool {
	if t == nil {
		return false
	}
	for _, name := range names {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); ok {
			return true
		}
	}
	return false
}
