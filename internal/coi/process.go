package coi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// State is the lifecycle state of a host-side COI process handle.
type State int

const (
	// StateActive is the normal state.
	StateActive State = iota
	// StatePaused means a Snapify pause holds the channels quiesced.
	StatePaused
	// StateSwapped means the offload process was captured and terminated;
	// the handle is defunct and a restore returns a fresh one.
	StateSwapped
	// StateDestroyed means the process was torn down.
	StateDestroyed
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePaused:
		return "paused"
	case StateSwapped:
		return "swapped"
	case StateDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DefaultBinarySize is the size of a device binary when the Binary does
// not declare one; the host copies it to the card at launch.
const DefaultBinarySize = 8 * simclock.MiB

// Process is the host-side handle to an offload process (COIProcess*).
type Process struct {
	plat *platform.Platform
	tl   *simclock.Timeline

	hostProc *proc.Process
	devNode  simnet.NodeID
	binName  string
	id       int

	// lifecycleMu protects process create/destroy critical regions
	// (Section 4.1, case 1); Snapify's pause acquires it.
	lifecycleMu sync.Mutex
	// rdmaMu protects COI buffer RDMA call sites (case 2).
	rdmaMu sync.Mutex

	mu          sync.Mutex
	state       State
	lifecycleEP *scif.Endpoint
	dmaEP       *scif.Endpoint
	cmds        map[string]*ClientChan
	pipelines   []*Pipeline
	buffers     map[int]*Buffer
	nextBufID   int
	nextPipeID  uint32
}

// CreateProcess launches an offload process running the named registered
// binary on device devNode (COIProcessCreateFromFile). hostProc is the
// calling host process; tl is the application's virtual timeline.
func CreateProcess(plat *platform.Platform, hostProc *proc.Process, tl *simclock.Timeline,
	devNode simnet.NodeID, binaryName string) (*Process, error) {

	bin, err := LookupBinary(binaryName)
	if err != nil {
		return nil, err
	}
	cp := &Process{
		plat:     plat,
		tl:       tl,
		hostProc: hostProc,
		devNode:  devNode,
		binName:  binaryName,
		cmds:     make(map[string]*ClientChan),
		buffers:  make(map[int]*Buffer),
	}
	if cp.hooks() {
		tl.Advance(plat.Model().HookLifecycle)
	}
	cp.lifecycleMu.Lock()
	defer cp.lifecycleMu.Unlock()

	ep, err := plat.Net.Connect(simnet.HostNode, scif.Addr{Node: devNode, Port: DaemonPort}) //nolint:mutexblock // intended: lifecycleMu serializes the whole launch round-trip against Snapify swap (Section 4.2)
	if err != nil {
		return nil, fmt.Errorf("coi: connecting to daemon on %v: %w", devNode, err)
	}
	cp.lifecycleEP = ep

	// The host copies the device binary to the coprocessor (Section 2).
	binSize := DefaultBinarySize
	tl.Advance(plat.Model().RDMA(binSize) + plat.Model().ProcLaunch)

	req := []byte{opLaunch}
	req = appendU32(req, uint32(len(binaryName)))
	req = append(req, binaryName...)
	req = binary.BigEndian.AppendUint64(req, uint64(binSize))
	if d, err := ep.Send(req); err != nil { //nolint:mutexblock // intended: the launch request owns the lifecycle channel for its round-trip
		return nil, err
	} else {
		tl.Advance(d)
	}
	raw, d, err := ep.Recv() //nolint:mutexblock // intended: the launch reply completes inside the lifecycle critical region
	if err != nil {
		return nil, err
	}
	tl.Advance(d)
	u, err := expectOp(raw, opLaunchResp)
	if err != nil {
		return nil, err
	}
	if u[0] != 0 {
		return nil, fmt.Errorf("coi: launch failed: %s", u[1:])
	}
	cp.id = int(u32(u[1:5]))
	if err := cp.connectChannels(parsePorts(u[5:])); err != nil {
		return nil, err
	}
	if _, err := cp.DaemonRequest(opAwaitReady, putU32(uint32(cp.id)), opAwaitReadyResp); err != nil {
		return nil, err
	}
	_ = bin

	// The daemon terminates the offload process if the host process dies.
	if daemon := DaemonAt(plat, devNode); daemon != nil {
		daemon.WatchHostProcess(hostProc, cp.id)
	}
	return cp, nil
}

func expectOp(raw []byte, want uint8) ([]byte, error) {
	if len(raw) == 0 || raw[0] != want {
		return nil, fmt.Errorf("coi: protocol error: want opcode %d", want)
	}
	return raw[1:], nil
}

func parsePorts(b []byte) []ChannelPort {
	n := int(u32(b))
	b = b[4:]
	out := make([]ChannelPort, 0, n)
	for i := 0; i < n; i++ {
		nameLen := int(u32(b))
		name := string(b[4 : 4+nameLen])
		port := int(u32(b[4+nameLen:]))
		b = b[8+nameLen:]
		out = append(out, ChannelPort{name, port})
	}
	return out
}

// connectChannels dials the offload process's channels.
func (cp *Process) connectChannels(ports []ChannelPort) error {
	model := cp.plat.Model()
	for _, chp := range ports {
		ep, err := cp.plat.Net.Connect(simnet.HostNode, scif.Addr{Node: cp.devNode, Port: chp.port})
		if err != nil {
			return fmt.Errorf("coi: connecting %s channel: %w", chp.name, err)
		}
		cp.tl.Advance(model.SCIFReconnect)
		if chp.name == "dma" {
			cp.mu.Lock()
			cp.dmaEP = ep
			cp.mu.Unlock()
			continue
		}
		cp.mu.Lock()
		cp.cmds[chp.name] = newClientChan(chp.name, ep, cp.tl, cp.hooks(), model.HookCommandSend, cp.plat.Obs.MetricsOf())
		cp.mu.Unlock()
	}
	return nil
}

// hooks reports whether Snapify instrumentation is compiled in.
func (cp *Process) hooks() bool { return cp.plat.SnapifyEnabled }

// State returns the handle state.
func (cp *Process) State() State {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.state
}

func (cp *Process) setState(s State) {
	cp.mu.Lock()
	cp.state = s
	cp.mu.Unlock()
}

// ID returns the daemon-assigned offload process id.
func (cp *Process) ID() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.id
}

// DeviceNode returns the card the offload process runs on.
func (cp *Process) DeviceNode() simnet.NodeID {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.devNode
}

// BinaryName returns the device binary's registered name.
func (cp *Process) BinaryName() string { return cp.binName }

// HostProc returns the host process that owns the handle.
func (cp *Process) HostProc() *proc.Process { return cp.hostProc }

// Platform returns the platform.
func (cp *Process) Platform() *platform.Platform { return cp.plat }

// Timeline returns the application timeline.
func (cp *Process) Timeline() *simclock.Timeline { return cp.tl }

// Command returns the named command channel.
func (cp *Process) Command(name string) *ClientChan {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.cmds[name]
}

// Pipelines returns the pipelines in creation order.
func (cp *Process) Pipelines() []*Pipeline {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]*Pipeline, len(cp.pipelines))
	copy(out, cp.pipelines)
	return out
}

// Buffers returns the buffers keyed by id.
func (cp *Process) Buffers() map[int]*Buffer {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make(map[int]*Buffer, len(cp.buffers))
	for id, b := range cp.buffers {
		out[id] = b
	}
	return out
}

// CreatePipeline creates a run-function pipeline (COIPipelineCreate).
func (cp *Process) CreatePipeline() (*Pipeline, error) {
	cp.mu.Lock()
	id := cp.nextPipeID
	cp.nextPipeID++
	cmd := cp.cmds["command"]
	cp.mu.Unlock()
	if cmd == nil {
		return nil, errors.New("coi: command channel not connected")
	}
	reply, err := cmd.Request(append([]byte{cmdPipelineCreate}, putU32(id)...))
	if err != nil {
		return nil, err
	}
	if reply[0] != 0 {
		return nil, fmt.Errorf("coi: pipeline create failed: %s", reply[1:])
	}
	port := int(u32(reply[1:]))
	ep, err := cp.plat.Net.Connect(simnet.HostNode, scif.Addr{Node: cp.devNode, Port: port})
	if err != nil {
		return nil, err
	}
	cp.tl.Advance(cp.plat.Model().SCIFReconnect)
	pl := newPipeline(cp, id, ep)
	cp.mu.Lock()
	cp.pipelines = append(cp.pipelines, pl)
	cp.mu.Unlock()
	return pl, nil
}

// Destroy tears down the offload process (COIProcessDestroy).
func (cp *Process) Destroy() error {
	if cp.hooks() {
		cp.tl.Advance(cp.plat.Model().HookLifecycle)
	}
	cp.lifecycleMu.Lock()
	defer cp.lifecycleMu.Unlock()
	if s := cp.State(); s == StateDestroyed || s == StateSwapped {
		return fmt.Errorf("%w: %s", ErrProcessGone, s)
	}
	req := append([]byte{opDestroy}, putU32(uint32(cp.id))...)
	if _, err := cp.lifecycleEP.Send(req); err != nil { //nolint:mutexblock // intended: lifecycleMu serializes the destroy round-trip against Snapify swap (Section 4.2)
		return err
	}
	raw, _, err := cp.lifecycleEP.Recv() //nolint:mutexblock // intended: the destroy reply completes inside the lifecycle critical region
	if err != nil {
		return err
	}
	u, err := expectOp(raw, opDestroyResp)
	if err != nil {
		return err
	}
	if u[0] != 0 {
		return fmt.Errorf("coi: destroy failed: %s", u[1:])
	}
	cp.setState(StateDestroyed)
	cp.closeAll()
	return nil
}

// closeAll closes every host-side endpoint.
func (cp *Process) closeAll() {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	for _, c := range cp.cmds {
		if ep := c.Endpoint(); ep != nil {
			ep.Close()
		}
	}
	if cp.dmaEP != nil {
		cp.dmaEP.Close()
	}
	for _, pl := range cp.pipelines {
		if ep := pl.endpoint(); ep != nil {
			ep.Close()
		}
	}
	if cp.lifecycleEP != nil {
		cp.lifecycleEP.Close()
	}
}

// HostEndpoints returns every host-side endpoint, for drain assertions.
func (cp *Process) HostEndpoints() []*scif.Endpoint {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	var out []*scif.Endpoint
	if cp.lifecycleEP != nil {
		out = append(out, cp.lifecycleEP)
	}
	for _, c := range cp.cmds {
		if ep := c.Endpoint(); ep != nil {
			out = append(out, ep)
		}
	}
	if cp.dmaEP != nil {
		out = append(out, cp.dmaEP)
	}
	for _, pl := range cp.pipelines {
		if ep := pl.endpoint(); ep != nil {
			out = append(out, ep)
		}
	}
	return out
}
