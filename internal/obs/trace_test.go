package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scriptedTwoCardCapture replays a fixed two-card snapshot lifecycle on a
// fresh tracer: pause and a 2-stream capture on mic0, then a restore onto
// mic1 — the same span names and track layout the real stack emits, with
// hand-picked durations so the export is stable.
func scriptedTwoCardCapture() *Tracer {
	tr := NewTracer()
	host := tr.Track("host", "app")
	agent0 := tr.Track("mic0", "offload_a")
	coid0 := tr.Track("mic0", "coid")
	coid1 := tr.Track("mic1", "coid")

	host.Emit(0, "snapify_pause", 0, 1000, map[string]int64{"local_store_bytes": 4096})
	host.Emit(0, "pause_handshake", 0, 300, nil)
	host.Emit(0, "host_drain", 300, 200, nil)
	host.Emit(0, "device_drain", 500, 500, map[string]int64{"bytes": 4096})
	agent0.AlignTo(500)
	agent0.Emit(0, "quiesce", 500, 100, nil)
	agent0.Emit(0, "save_local_store", 600, 400, map[string]int64{"bytes": 4096})
	coid0.Emit(0, "drain_coordination", 500, 500, nil)

	scope := tr.NewScope()
	w0 := tr.Track("mic0", "offload_a/stream 0")
	w1 := tr.Track("mic0", "offload_a/stream 1")
	w0.Emit(scope, "capture_stream", 1000, 2000, map[string]int64{"bytes": 8192, "stream": 0})
	w1.Emit(scope, "capture_stream", 1000, 1500, map[string]int64{"bytes": 8192, "stream": 1})
	coid0.Emit(0, "capture_coordination", 1000, 2000, nil)
	host.Emit(scope, "snapify_capture", 1000, 2000, map[string]int64{"bytes": 16384, "streams": 2})

	coid1.AlignTo(3000)
	coid1.Emit(0, "restore_context", 3000, 800, map[string]int64{"bytes": 16384})
	coid1.Emit(0, "reload_local_store", 3800, 200, map[string]int64{"bytes": 4096})
	host.Emit(0, "snapify_restore", 3000, 1100, nil)
	host.Emit(0, "restore_device", 3000, 800, nil)
	host.Emit(0, "restore_local", 3800, 200, nil)
	host.Emit(0, "restore_reconnect", 4000, 100, map[string]int64{"remap_entries": 2})
	host.Emit(0, "snapify_resume", 4100, 50, nil)
	return tr
}

// TestChromeTraceGolden pins the Chrome trace export byte-for-byte for
// the scripted two-card capture: metadata in track-creation order, spans
// sorted deterministically, exact nanoseconds in args.dur_ns. Any change
// to the export format must update testdata/two_card_capture.json
// deliberately.
func TestChromeTraceGolden(t *testing.T) {
	got := scriptedTwoCardCapture().ChromeTrace()
	want, err := os.ReadFile("testdata/two_card_capture.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("export drifted from golden (got %d bytes, want %d):\n%s", len(got), len(want), got)
	}
	if err := ValidateChromeTrace(got); err != nil {
		t.Errorf("golden trace does not validate: %v", err)
	}
}

// TestChromeTraceDeterministic exports the same trace twice and demands
// identical bytes — the property the golden test and CI diffing rely on.
func TestChromeTraceDeterministic(t *testing.T) {
	tr := scriptedTwoCardCapture()
	if !bytes.Equal(tr.ChromeTrace(), tr.ChromeTrace()) {
		t.Error("two exports of the same tracer differ")
	}
}

func TestScopeSpans(t *testing.T) {
	tr := scriptedTwoCardCapture()
	spans := tr.ScopeSpans(1)
	var streams int
	for _, s := range spans {
		if s.Name == "capture_stream" {
			streams++
		}
	}
	if streams != 2 {
		t.Errorf("scope 1 has %d capture_stream spans, want 2", streams)
	}
	if got := tr.ScopeSpans(0); got != nil {
		t.Errorf("scope 0 must never match, got %d spans", len(got))
	}
}

// TestNilTracerIsNoOp pins the nil-safety contract every call site relies
// on: a nil tracer hands out nil tracks, scope 0, and empty exports, and
// emitting on a nil track still returns the span record.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tk := tr.Track("host", "app")
	if tk != nil {
		t.Fatal("nil tracer returned a non-nil track")
	}
	if got := tr.NewScope(); got != 0 {
		t.Errorf("nil tracer minted scope %d, want 0", got)
	}
	sp := tk.Emit(7, "work", 10, 5, nil)
	if sp.Dur != 5 || sp.Start != 10 || sp.Name != "work" {
		t.Errorf("nil track Emit returned %+v, want the span record back", sp)
	}
	tk.AlignTo(100)
	if tk.Now() != 0 {
		t.Error("nil track has a cursor")
	}
	if tr.Spans() != nil || tr.ScopeSpans(7) != nil {
		t.Error("nil tracer recorded spans")
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"not json", "nope", "not valid JSON"},
		{"empty", `{"traceEvents":[]}`, "empty traceEvents"},
		{"metadata only", `{"traceEvents":[
			{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"host"}}]}`,
			"no X (span) events"},
		{"unnamed span", `{"traceEvents":[
			{"name":"","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":1000}}]}`,
			"unnamed"},
		{"unknown phase", `{"traceEvents":[
			{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`,
			"unsupported phase"},
		{"missing dur_ns", `{"traceEvents":[
			{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
			"missing args.dur_ns"},
		{"inconsistent dur_ns", `{"traceEvents":[
			{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":5000}}]}`,
			"disagrees"},
		{"unlabeled lane", `{"traceEvents":[
			{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":1000}}]}`,
			"no process_name"},
		{"partial overlap", `{"traceEvents":[
			{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"host"}},
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"app"}},
			{"name":"a","ph":"X","ts":0,"dur":2,"pid":1,"tid":1,"args":{"dur_ns":2000}},
			{"name":"b","ph":"X","ts":1,"dur":2,"pid":1,"tid":1,"args":{"dur_ns":2000}}]}`,
			"partially overlaps"},
		{"scope never created", `{"traceEvents":[
			{"name":"scope_count","ph":"M","ts":0,"pid":0,"tid":0,"args":{"count":1}},
			{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"host"}},
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"app"}},
			{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":1000,"scope":3}}]}`,
			"only 1 scope(s) were ever created"},
		{"non-integer scope", `{"traceEvents":[
			{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"host"}},
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"app"}},
			{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":1000,"scope":1.5}}]}`,
			"not a positive integer"},
		{"zero scope arg", `{"traceEvents":[
			{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"host"}},
			{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"app"}},
			{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":1000,"scope":0}}]}`,
			"not a positive integer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateChromeTrace([]byte(tc.doc))
			if err == nil {
				t.Fatal("validated")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateBadTraceFixtures runs the validator over the committed
// bad-trace goldens (testdata/bad_*.json) — corrupted exports a tool in
// the wild might hand us — and demands each is rejected.
func TestValidateBadTraceFixtures(t *testing.T) {
	fixtures, err := filepath.Glob("testdata/bad_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no bad_*.json fixtures found")
	}
	for _, path := range fixtures {
		t.Run(filepath.Base(path), func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateChromeTrace(b); err == nil {
				t.Errorf("%s validated; fixture must be rejected", path)
			}
		})
	}
}

// TestValidateChromeTraceAcceptsNesting: containment (parent span fully
// covering children) and disjoint spans are both legal on one lane.
func TestValidateChromeTraceAcceptsNesting(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"host"}},
		{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"app"}},
		{"name":"parent","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,"args":{"dur_ns":10000}},
		{"name":"child","ph":"X","ts":2,"dur":3,"pid":1,"tid":1,"args":{"dur_ns":3000}},
		{"name":"sibling","ph":"X","ts":5,"dur":5,"pid":1,"tid":1,"args":{"dur_ns":5000}},
		{"name":"later","ph":"X","ts":20,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":1000}}]}`
	if err := ValidateChromeTrace([]byte(doc)); err != nil {
		t.Errorf("legal nesting rejected: %v", err)
	}
}

// TestOpenSpan pins the Begin/End pairing contract: the recorded span
// matches an equivalent Emit, SetArg mutates only until End, End is
// idempotent (so a deferred End composes with an early explicit EndAt),
// and EndAt clamps a stale timestamp to zero duration.
func TestOpenSpan(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track("host", "app")
	tk.AlignTo(100)

	sp := tk.Begin(3, "gc", map[string]int64{"seed": 1})
	sp.SetArg("reclaimed", 42)
	tk.Emit(0, "sweep", 100, 40, nil) // advances the cursor to 140
	got := sp.End()
	want := Span{Process: "host", Thread: "app", Scope: 3, Name: "gc",
		Start: 100, Dur: 40, Args: map[string]int64{"seed": 1, "reclaimed": 42}}
	if got.Name != want.Name || got.Start != want.Start || got.Dur != want.Dur ||
		got.Scope != want.Scope || got.Args["reclaimed"] != 42 || got.Args["seed"] != 1 {
		t.Errorf("End recorded %+v, want %+v", got, want)
	}

	// Second End is a no-op: nothing re-recorded, SetArg dead.
	before := len(tr.Spans())
	sp.SetArg("late", 1)
	if again := sp.End(); again.Name != "" {
		t.Errorf("second End returned %+v, want zero Span", again)
	}
	if len(tr.Spans()) != before {
		t.Error("second End recorded another span")
	}

	// Early explicit EndAt followed by a deferred End: exactly one record.
	sp2 := tk.BeginAt(0, "early", 200, nil)
	sp2.EndAt(250)
	sp2.End()
	var early int
	for _, s := range tr.Spans() {
		if s.Name == "early" {
			early++
			if s.Start != 200 || s.Dur != 50 {
				t.Errorf("early span %+v, want start 200 dur 50", s)
			}
		}
	}
	if early != 1 {
		t.Errorf("early span recorded %d times, want 1", early)
	}

	// Stale end time clamps instead of going negative.
	sp3 := tk.BeginAt(0, "clamp", 300, nil)
	if s := sp3.EndAt(120); s.Dur != 0 {
		t.Errorf("EndAt before start produced dur %v, want 0", s.Dur)
	}
}

// TestOpenSpanNilTrack: instrumented code must not need nil checks —
// Begin on a nil track hands back a span whose End returns the record
// without touching a tracer.
func TestOpenSpanNilTrack(t *testing.T) {
	var tk *Track
	sp := tk.Begin(1, "work", nil)
	sp.SetArg("k", 7)
	got := sp.End()
	if got.Name != "work" || got.Args["k"] != 7 {
		t.Errorf("nil-track End returned %+v, want the span record back", got)
	}
	var nilSp *OpenSpan
	nilSp.SetArg("k", 1) // must not panic
	if s := nilSp.End(); s.Name != "" {
		t.Errorf("nil OpenSpan End returned %+v", s)
	}
}

// TestTrackCursor pins AlignTo/Emit cursor semantics: forward-only
// alignment, cursor at the furthest span end, Span() starting there.
func TestTrackCursor(t *testing.T) {
	tr := NewTracer()
	tk := tr.Track("host", "app")
	tk.AlignTo(100)
	if tk.Now() != 100 {
		t.Fatalf("cursor %v after AlignTo(100)", tk.Now())
	}
	tk.AlignTo(50) // backwards: no-op
	if tk.Now() != 100 {
		t.Fatalf("AlignTo moved the cursor backwards to %v", tk.Now())
	}
	tk.Emit(0, "a", 100, 40, nil)
	if tk.Now() != 140 {
		t.Fatalf("cursor %v after span ending at 140", tk.Now())
	}
	sp := tk.Span(0, "b", 10, nil)
	if sp.Start != 140 || sp.End() != 150 {
		t.Errorf("Span() started at %v, want the cursor (140)", sp.Start)
	}
	if got := tr.Track("host", "app"); got != tk {
		t.Error("Track is not idempotent for the same (process, thread)")
	}
}
