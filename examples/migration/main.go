// Migration: a fault predictor flags a coprocessor, and the job scheduler
// proactively migrates the offload process to a healthy card (the paper's
// motivating scenario in Section 1) — transparently to the application,
// which keeps computing with the same handles.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"snapify"
	"snapify/internal/proc"
)

func main() {
	snapify.RegisterBinary(solverBinary())
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 2})
	check(err)
	defer srv.Stop()

	app, err := srv.Launch("iterative_solver", 1)
	check(err)
	defer app.Close()
	pl, err := app.Proc.CreatePipeline()
	check(err)
	buf, err := app.Proc.CreateBuffer(64 << 20)
	check(err)
	seedData := make([]byte, 1<<20)
	for i := range seedData {
		seedData[i] = byte(i * 31)
	}
	check(buf.Write(seedData, 0))

	run := func(totalIters uint64) uint64 {
		args := make([]byte, 12)
		binary.BigEndian.PutUint64(args, totalIters)
		binary.BigEndian.PutUint32(args[8:], uint32(buf.ID()))
		out, err := pl.RunFunction("iterate", args)
		check(err)
		return binary.BigEndian.Uint64(out)
	}

	fmt.Printf("solver running on %v\n", app.Proc.DeviceNode())
	run(200)
	fmt.Println("200 iterations done")

	// The fault predictor (Section 1 cites online failure prediction)
	// flags mic0. Migrate before it dies: the local store streams
	// device-to-device over PCIe, the snapshot through the host.
	fmt.Println("\n*** fault predictor: mic0 degradation imminent — migrating ***")
	_, snap, err := snapify.Migrate(app.Proc, 2, "/migration/solver")
	check(err)
	fmt.Printf("migrated to %v in %.2fs virtual (pause+local-store %.2fs, capture %.2fs, restore %.2fs)\n",
		app.Proc.DeviceNode(),
		(snap.Report.PauseTotal() + snap.Report.Capture + snap.Report.RestoreTotal() + snap.Report.Resume).Seconds(),
		snap.Report.PauseTotal().Seconds(), snap.Report.Capture.Seconds(),
		snap.Report.RestoreTotal().Seconds())
	fmt.Printf("RDMA buffers re-registered: %d address(es) remapped\n", snap.Report.RemapEntries)

	// mic0 "fails"; the job never notices.
	final := run(500)
	fmt.Printf("\nsolver completed 500 iterations on the healthy card; residual checksum %d\n", final)

	// Cross-check against an undisturbed run.
	app2, err := srv.Launch("iterative_solver", 2)
	check(err)
	defer app2.Close()
	pl2, _ := app2.Proc.CreatePipeline()
	buf2, _ := app2.Proc.CreateBuffer(64 << 20)
	check(buf2.Write(seedData, 0))
	args := make([]byte, 12)
	binary.BigEndian.PutUint64(args, 500)
	binary.BigEndian.PutUint32(args[8:], uint32(buf2.ID()))
	out, err := pl2.RunFunction("iterate", args)
	check(err)
	if ref := binary.BigEndian.Uint64(out); ref == final {
		fmt.Printf("reference run agrees (%d): migration was transparent\n", ref)
	} else {
		fmt.Printf("MISMATCH: reference %d != migrated %d\n", ref, final)
		os.Exit(1)
	}
}

func solverBinary() *snapify.Binary {
	bin := snapify.NewBinary("iterative_solver")
	bin.AddRegion("state", proc.RegionHeap, 8<<20, 0)
	bin.Register("iterate", func(ctx *snapify.RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		bufID := int(binary.BigEndian.Uint32(args[8:]))
		st := ctx.Region("state")
		data := ctx.Buffer(bufID)
		prog := make([]byte, 16)
		st.ReadAt(prog, 0)
		page := make([]byte, 4096)
		for {
			i := binary.BigEndian.Uint64(prog[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				data.ReadAt(page, int64(i%256)*4096)
				res := binary.BigEndian.Uint64(prog[8:])
				for _, v := range page {
					res = res*31 + uint64(v)
				}
				binary.BigEndian.PutUint64(prog[:8], i+1)
				binary.BigEndian.PutUint64(prog[8:], res)
				st.WriteAt(prog, 0)
				ctx.Compute(2 * time.Millisecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(prog, 0)
		copy(out, prog[8:])
		return out, nil
	})
	return bin
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "migration:", err)
		os.Exit(1)
	}
}
