package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"snapify/internal/blob"
	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/obs"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapstore"
	"snapify/internal/trace"
	"snapify/internal/vfs"
	"snapify/internal/workloads"
)

// DedupSwapImageBytes is the default device image of the dedup swap
// benchmark. Like the faulted-capture benchmark it is deliberately
// smaller than the parallel sweep's 8 GiB: the object of study is the
// *ratio* of bytes shipped with and without the store, and that ratio is
// size-independent once the image dwarfs one chunk.
const DedupSwapImageBytes = 1 * simclock.GiB

// DedupSwapCycles is how many swap-out/swap-in round trips each data
// path runs. The first store-path cycle ships everything (the store is
// cold); every later cycle ships only the chunks the workload dirtied
// in between, so the dedup win grows with the cycle count.
const DedupSwapCycles = 4

// DedupSwapRow is one swap cycle's measurements on both data paths.
type DedupSwapRow struct {
	Cycle int `json:"cycle"`
	// SnapshotBytes is the logical context-file size (identical across
	// cycles and paths: swapping never changes the image size).
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// PlainShippedBytes is what the plain data path moved to the host —
	// always the whole image.
	PlainShippedBytes int64 `json:"plain_shipped_bytes"`
	// StoreShippedBytes is what the dedup path moved after the have/need
	// negotiation skipped the chunks the store already held.
	StoreShippedBytes int64 `json:"store_shipped_bytes"`
	PlainCaptureNs    int64 `json:"plain_capture_ns"`
	StoreCaptureNs    int64 `json:"store_capture_ns"`
	// ChunksTotal and ChunksShipped are the negotiation's have/need
	// outcome, from the cycle's store_negotiate span.
	ChunksTotal   int64 `json:"chunks_total"`
	ChunksShipped int64 `json:"chunks_shipped"`
	// PlainWallNs / StoreWallNs are the real wall-clock time the harness
	// spent on this cycle's swap round trip on each path —
	// machine-dependent, excluded from the regression gate.
	PlainWallNs int64 `json:"plain_wall_ns"`
	StoreWallNs int64 `json:"store_wall_ns"`
}

// DedupSwapResult is the full comparison.
type DedupSwapResult struct {
	Benchmark  string         `json:"benchmark"`
	ImageBytes int64          `json:"image_bytes"`
	Cycles     int            `json:"cycles"`
	Rows       []DedupSwapRow `json:"rows"`

	PlainShippedTotal int64 `json:"plain_shipped_total"`
	StoreShippedTotal int64 `json:"store_shipped_total"`
	// ReductionX is PlainShippedTotal / StoreShippedTotal — the headline
	// dedup win (the acceptance floor is 3x at 4 cycles).
	ReductionX float64 `json:"reduction_x"`
	// StoreDedupRatio is the store's logical/stored byte ratio after the
	// run: how many snapshot bytes each resident chunk byte serves.
	StoreDedupRatio float64 `json:"store_dedup_ratio"`
	// ContextsIdentical reports the dual-capture identity probe: the same
	// frozen process captured once to a plain file and once through the
	// store, with the store copy read back chunk-by-chunk — both byte
	// streams must be identical, so restores from the store rebuild
	// exactly what a plain restore would.
	ContextsIdentical bool `json:"contexts_identical"`
	// NegotiationSpans counts the store_negotiate spans on the trace;
	// CorrelatedSpans counts those sharing a scope id with a
	// snapify_capture span (all of them, or the trace is broken).
	NegotiationSpans int `json:"negotiation_spans"`
	CorrelatedSpans  int `json:"correlated_spans"`
	// ChunksAfterGC is the store's resident chunk count after every
	// manifest was released and a GC ran: zero, or the refcounts leak.
	ChunksAfterGC int `json:"chunks_after_gc"`
	// WallTotalNs / WallNsPerGiB are the harness's own wall-clock cost
	// across both paths, normalized per GiB of simulated image swapped.
	WallTotalNs  int64 `json:"wall_total_ns"`
	WallNsPerGiB int64 `json:"wall_ns_per_gib"`

	tracer *obs.Tracer
}

// TraceJSON exports the run's virtual-clock trace as Chrome trace-event
// JSON; the store_negotiate spans sit on the card tracks, scoped to
// their captures.
func (r *DedupSwapResult) TraceJSON() []byte {
	return r.tracer.ChromeTrace()
}

// DedupSwap swaps one offload process out and back in `cycles` times on
// each data path — plain host files, then the content-addressed store —
// running one offload call between swaps so consecutive images differ by
// a realistic dirty set. It reports the bytes each path physically
// shipped, proves the store round-trip byte-identical with a dual
// capture of one frozen image, and finishes by releasing every manifest
// and running GC to pin the refcount accounting at zero chunks.
//
// Each data path runs on its own freshly built platform: the two runs are
// deterministic replays of the same workload, so sharing one platform
// would land both instances' spans at the same virtual times on the
// shared host and coid trace lanes, and the exported trace would show
// phantom overlaps between operations that never coexisted.
func DedupSwap(imageBytes int64, cycles int) (*DedupSwapResult, error) {
	if cycles < 2 {
		return nil, fmt.Errorf("dedup swap: need at least 2 cycles to dedup across, got %d", cycles)
	}
	newPlat := func() (*platform.Platform, error) {
		p, err := platform.New(platform.Config{Server: phi.ServerConfig{
			Devices: 1,
			Device:  phi.DeviceConfig{MemBytes: imageBytes + 2*simclock.GiB},
		}})
		if err != nil {
			return nil, err
		}
		if err := coi.StartDaemons(p); err != nil {
			return nil, err
		}
		return p, nil
	}

	spec := workloads.Spec{
		Code: "DS", Name: "dedup swap cycles",
		HostMem:      16 * simclock.MiB,
		DeviceMem:    imageBytes,
		LocalStore:   4 * simclock.MiB,
		Calls:        cycles + 2,
		StepsPerCall: 2,
	}

	// runCycles drives one instance through the swap cycles on one data
	// path and returns the per-cycle capture reports. The store-path
	// instance finishes with the dual-capture identity probe while the
	// process is still resident; both instances then run to completion
	// (a corrupted restore would derail the remaining offload calls).
	identical := false
	runCycles := func(plat *platform.Platform, storeMode bool, pathPrefix string) ([]*core.Report, []int64, error) {
		in, err := workloads.Launch(plat, spec, 1)
		if err != nil {
			return nil, nil, err
		}
		defer in.Close()
		if _, err := in.RunCalls(1); err != nil {
			return nil, nil, err
		}
		var reports []*core.Report
		var walls []int64
		for c := 0; c < cycles; c++ {
			wall := simclock.StartWall()
			var copts core.CaptureOptions
			var ropts core.RestoreOptions
			copts.Store.Enabled = storeMode
			ropts.Store.Enabled = storeMode
			s, err := core.Swapout(fmt.Sprintf("%s/cycle%d", pathPrefix, c), in.CP, copts)
			if err != nil {
				return nil, nil, fmt.Errorf("cycle %d swapout: %w", c, err)
			}
			cp, err := core.Swapin(s, simnet.NodeID(1), ropts)
			if err != nil {
				return nil, nil, fmt.Errorf("cycle %d swapin: %w", c, err)
			}
			in.CP = cp
			reports = append(reports, &s.Report)
			walls = append(walls, wall.ElapsedNs())
			// Dirty a small working set before the next cycle, as a real
			// swapped tenant would between residencies.
			if _, err := in.RunCalls(1); err != nil {
				return nil, nil, err
			}
		}
		if storeMode {
			if identical, err = dualCaptureIdentical(plat, in.CP); err != nil {
				return nil, nil, fmt.Errorf("identity probe: %w", err)
			}
		}
		if _, err := in.Run(); err != nil {
			return nil, nil, err
		}
		return reports, walls, nil
	}

	runWall := simclock.StartWall()
	plainPlat, err := newPlat()
	if err != nil {
		return nil, err
	}
	plainReports, plainWalls, err := func() ([]*core.Report, []int64, error) {
		defer coi.StopDaemons(plainPlat)
		defer plainPlat.IO.Stop()
		return runCycles(plainPlat, false, "/bench/dedup/plain")
	}()
	if err != nil {
		return nil, fmt.Errorf("plain path: %w", err)
	}

	plat, err := newPlat()
	if err != nil {
		return nil, err
	}
	defer coi.StopDaemons(plat)
	defer plat.IO.Stop()
	storeReports, storeWalls, err := runCycles(plat, true, "/bench/dedup/store")
	if err != nil {
		return nil, fmt.Errorf("store path: %w", err)
	}

	res := &DedupSwapResult{
		Benchmark: "dedup-swap", ImageBytes: imageBytes, Cycles: cycles,
		ContextsIdentical: identical,
		tracer:            plat.Obs.TracerOf(),
	}

	// The store_negotiate spans, in cycle order, carry each cycle's
	// have/need outcome; their scope ids must resolve to captures.
	captureScopes := map[uint64]bool{}
	var negotiations []obs.Span
	for _, sp := range res.tracer.Spans() {
		switch sp.Name {
		case "snapify_capture":
			captureScopes[sp.Scope] = true
		case "store_negotiate":
			negotiations = append(negotiations, sp)
		}
	}
	res.NegotiationSpans = len(negotiations)
	for _, sp := range negotiations {
		if sp.Scope != 0 && captureScopes[sp.Scope] {
			res.CorrelatedSpans++
		}
	}

	for c := 0; c < cycles; c++ {
		row := DedupSwapRow{
			Cycle:             c,
			SnapshotBytes:     plainReports[c].SnapshotBytes,
			PlainShippedBytes: plainReports[c].ShippedBytes,
			StoreShippedBytes: storeReports[c].ShippedBytes,
			PlainCaptureNs:    int64(plainReports[c].Capture),
			StoreCaptureNs:    int64(storeReports[c].Capture),
			PlainWallNs:       plainWalls[c],
			StoreWallNs:       storeWalls[c],
		}
		if c < len(negotiations) {
			row.ChunksTotal = negotiations[c].Args["chunks_total"]
			row.ChunksShipped = negotiations[c].Args["chunks_needed"]
		}
		res.PlainShippedTotal += row.PlainShippedBytes
		res.StoreShippedTotal += row.StoreShippedBytes
		res.Rows = append(res.Rows, row)
	}
	if res.StoreShippedTotal > 0 {
		res.ReductionX = float64(res.PlainShippedTotal) / float64(res.StoreShippedTotal)
	}
	res.StoreDedupRatio = plat.Store.Stats().DedupRatio()

	// Drop every snapshot and collect: a clean store afterwards is the
	// refcount/GC acceptance (ISSUE 5) measured, not assumed.
	for _, p := range plat.Store.List() {
		if _, err := plat.Store.Release(p); err != nil {
			return nil, fmt.Errorf("releasing %s: %w", p, err)
		}
	}
	if _, _, err := plat.Store.GC(0); err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	res.ChunksAfterGC = plat.Store.Stats().Chunks
	res.WallTotalNs = runWall.ElapsedNs()
	// Both paths swap the full image out and back each cycle.
	res.WallNsPerGiB = simclock.WallNsPerGiB(res.WallTotalNs, 2*imageBytes*int64(cycles))
	return res, nil
}

// Render prints the comparison in the tables' layout.
func (r *DedupSwapResult) Render() string {
	t := trace.New(fmt.Sprintf("Dedup swap: %s image, %d swap cycles, plain files vs content-addressed store",
		sizeLabel(r.ImageBytes), r.Cycles),
		"Cycle", "Snapshot (MiB)", "Plain ship (MiB)", "Store ship (MiB)", "Chunks need/total")
	for _, row := range r.Rows {
		t.Row(fmt.Sprintf("%d", row.Cycle),
			fmt.Sprintf("%d", row.SnapshotBytes/simclock.MiB),
			fmt.Sprintf("%d", row.PlainShippedBytes/simclock.MiB),
			fmt.Sprintf("%d", row.StoreShippedBytes/simclock.MiB),
			fmt.Sprintf("%d/%d", row.ChunksShipped, row.ChunksTotal))
	}
	return t.String() + fmt.Sprintf("\nshipped: plain %d MiB, store %d MiB — %.1fx reduction; store dedup ratio %.2fx\nstore context byte-identical to plain: %v; chunks after release-all + GC: %d\nharness wall-clock: %.1f ms total, %d ns per simulated GiB",
		r.PlainShippedTotal/simclock.MiB, r.StoreShippedTotal/simclock.MiB,
		r.ReductionX, r.StoreDedupRatio, r.ContextsIdentical, r.ChunksAfterGC,
		float64(r.WallTotalNs)/1e6, r.WallNsPerGiB)
}

// CheckShape verifies the acceptance claims: the cold cycle ships the
// whole image, every warm cycle ships strictly less, the total reduction
// is at least 3x, the store-resident context is byte-for-byte the plain
// capture, every negotiation span correlates with a capture scope, and
// releasing everything leaves an empty store.
func (r *DedupSwapResult) CheckShape() error {
	if len(r.Rows) != r.Cycles {
		return fmt.Errorf("dedup swap: %d rows for %d cycles", len(r.Rows), r.Cycles)
	}
	for _, row := range r.Rows {
		if row.SnapshotBytes != r.Rows[0].SnapshotBytes {
			return fmt.Errorf("dedup swap: cycle %d snapshot is %d bytes, cycle 0 was %d",
				row.Cycle, row.SnapshotBytes, r.Rows[0].SnapshotBytes)
		}
		if row.PlainShippedBytes != row.SnapshotBytes {
			return fmt.Errorf("dedup swap: plain path shipped %d of %d bytes at cycle %d — plain captures ship everything",
				row.PlainShippedBytes, row.SnapshotBytes, row.Cycle)
		}
		if row.Cycle > 0 && row.StoreShippedBytes >= row.SnapshotBytes {
			return fmt.Errorf("dedup swap: warm cycle %d still shipped %d of %d bytes — negotiation skipped nothing",
				row.Cycle, row.StoreShippedBytes, row.SnapshotBytes)
		}
	}
	if r.Rows[0].StoreShippedBytes != r.Rows[0].SnapshotBytes {
		return fmt.Errorf("dedup swap: cold store cycle shipped %d of %d bytes — the empty store cannot dedup",
			r.Rows[0].StoreShippedBytes, r.Rows[0].SnapshotBytes)
	}
	if r.ReductionX < 3.0 {
		return fmt.Errorf("dedup swap: only %.2fx shipped-byte reduction over %d cycles, want >= 3x",
			r.ReductionX, r.Cycles)
	}
	if !r.ContextsIdentical {
		return fmt.Errorf("dedup swap: store round-trip of the context file is not byte-identical to the plain capture")
	}
	// The store cycles plus the identity probe each negotiated once.
	if r.NegotiationSpans != r.Cycles+1 {
		return fmt.Errorf("dedup swap: %d store_negotiate spans for %d store captures", r.NegotiationSpans, r.Cycles+1)
	}
	if r.CorrelatedSpans != r.NegotiationSpans {
		return fmt.Errorf("dedup swap: only %d of %d negotiation spans share a scope with a snapify_capture span",
			r.CorrelatedSpans, r.NegotiationSpans)
	}
	if r.ChunksAfterGC != 0 {
		return fmt.Errorf("dedup swap: %d chunks survive release-all + GC — a refcount leaked", r.ChunksAfterGC)
	}
	return nil
}

// JSON renders the comparison as the BENCH_dedup.json document.
func (r *DedupSwapResult) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// dualCaptureIdentical captures the same frozen process twice — once to
// a plain host file, once through the store — and compares the two byte
// streams, reading the store copy back chunk-by-chunk through the
// overlay exactly as a restore would. No work runs between the captures
// (and CaptureFull does not reset dirty tracking), so the frozen image
// is the same both times.
func dualCaptureIdentical(plat *platform.Platform, cp *coi.Process) (bool, error) {
	capture := func(dir string, storeMode bool) error {
		s := core.NewSnapshot(dir, cp)
		if err := s.Pause(); err != nil {
			return err
		}
		var opts core.CaptureOptions
		opts.Store.Enabled = storeMode
		if err := s.Capture(opts); err != nil {
			return err
		}
		if err := s.Wait(); err != nil {
			return err
		}
		return s.Resume()
	}
	if err := capture("/bench/dedup/ident_plain", false); err != nil {
		return false, fmt.Errorf("plain capture: %w", err)
	}
	if err := capture("/bench/dedup/ident_store", true); err != nil {
		return false, fmt.Errorf("store capture: %w", err)
	}
	plain, _, err := plat.Host().FS.ReadFile("/bench/dedup/ident_plain/" + coi.ContextFileName)
	if err != nil {
		return false, err
	}
	stored, err := readStoreFile(plat, "/bench/dedup/ident_store/"+coi.ContextFileName)
	if err != nil {
		return false, err
	}
	return plain.Len() == stored.Len() && blob.Equal(plain, stored), nil
}

// readStoreFile assembles a store-resident snapshot file through the
// same overlay reader the restore path uses.
func readStoreFile(plat *platform.Platform, path string) (blob.Blob, error) {
	r, err := snapstore.Overlay(plat.Store, vfs.Host(plat.Host().FS)).Open(path)
	if err != nil {
		return blob.Blob{}, err
	}
	var parts []blob.Blob
	for {
		b, _, err := r.Next(64 * simclock.MiB)
		if err == io.EOF {
			break
		}
		if err != nil {
			return blob.Blob{}, err
		}
		parts = append(parts, b)
	}
	return blob.Concat(parts...), nil
}
