package core

import (
	"testing"

	"snapify/internal/simclock"
)

// TestCaptureReportResetSymmetry reuses one Snapshot for a 4-stream
// capture followed by a serial one and checks every capture field is
// rewritten both times: the serial capture must not inherit the parallel
// capture's stream count or worker durations. (The pre-span Report filled
// these fields from a wire array that was only present for parallel
// replies; deriving them from the capture's scoped spans makes the reset
// structural.)
func TestCaptureReportResetSymmetry(t *testing.T) {
	r := newRig(t, "core_reset_sym", 1)
	r.count(t, 10)

	s := NewSnapshot("/snap/reset_sym", r.cp)
	cycle := func(opts CaptureOptions) {
		t.Helper()
		if err := s.Pause(); err != nil {
			t.Fatal(err)
		}
		if err := s.Capture(opts); err != nil {
			t.Fatal(err)
		}
		if err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := s.Resume(); err != nil {
			t.Fatal(err)
		}
	}

	cycle(CaptureOptions{Streams: 4})
	if s.Report.CaptureStreams != 4 || len(s.Report.CaptureStreamDurations) != 4 {
		t.Fatalf("parallel capture reported %d streams / %d durations, want 4/4",
			s.Report.CaptureStreams, len(s.Report.CaptureStreamDurations))
	}

	cycle(CaptureOptions{})
	if s.Report.CaptureStreams != 1 {
		t.Errorf("serial capture after parallel left CaptureStreams = %d, want 1", s.Report.CaptureStreams)
	}
	if s.Report.CaptureStreamDurations != nil {
		t.Errorf("serial capture after parallel left %d stale stream durations",
			len(s.Report.CaptureStreamDurations))
	}
}

// TestReportMatchesSpans checks the single-source-of-truth contract: the
// Report's phase durations are exactly the durations of the spans the
// operation emitted on the platform tracer — same integers.
func TestReportMatchesSpans(t *testing.T) {
	r := newRig(t, "core_report_spans", 1)
	r.count(t, 10)

	s := NewSnapshot("/snap/report_spans", r.cp)
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := s.Capture(CaptureOptions{Streams: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}

	byName := make(map[string]simclock.Duration)
	var captureStreams []simclock.Duration
	for _, sp := range r.plat.Obs.TracerOf().Spans() {
		if sp.Name == "capture_stream" {
			captureStreams = append(captureStreams, sp.Dur)
			continue
		}
		byName[sp.Name] = sp.Dur
	}
	rep := &s.Report
	for _, c := range []struct {
		span string
		dur  simclock.Duration
	}{
		{"pause_handshake", rep.PauseHandshake},
		{"host_drain", rep.HostDrain},
		{"device_drain", rep.DeviceDrain},
		{"snapify_pause", rep.PauseTotal()},
		{"snapify_capture", rep.Capture},
		{"snapify_resume", rep.Resume},
	} {
		got, ok := byName[c.span]
		if !ok {
			t.Errorf("no %s span on the tracer", c.span)
			continue
		}
		if got != c.dur {
			t.Errorf("%s span is %d ns, Report says %d ns", c.span, got, c.dur)
		}
	}
	if len(captureStreams) != len(rep.CaptureStreamDurations) {
		t.Fatalf("tracer has %d capture_stream spans, Report has %d durations",
			len(captureStreams), len(rep.CaptureStreamDurations))
	}
	for i, d := range rep.CaptureStreamDurations {
		if captureStreams[i] != d {
			t.Errorf("stream %d: span %d ns, Report %d ns", i, captureStreams[i], d)
		}
	}
}
