package core

// The chaos tier (DESIGN.md §10): every single-fault point in the data
// path — each link direction, each daemon, the per-chunk service point,
// the COI request dispatch — is swept against capture, restore, and
// delta-capture. The contract under fault is atomic-or-retryable:
//
//   - the operation either succeeds (and the restored computation is
//     byte-identical to the fault-free run), or
//   - it fails cleanly, leaving no torn snapshot file and no orphan
//     ".partial" assembly anywhere on any file system.
//
// Fault plans are explicit and deterministic (no real randomness), so a
// failing case replays exactly; scripts/verify.sh runs the sweep twice
// under -race.

import (
	"strings"
	"sync"
	"testing"

	"snapify/internal/coi"
	"snapify/internal/faultinject"
	"snapify/internal/platform"
	"snapify/internal/simnet"
)

// chaosOpts is the capture/restore configuration every chaos case uses:
// a striped data path with small chunks (so trigger ordinals land
// mid-stream) and a bounded retry budget.
func chaosOpts() CaptureOptions {
	return CaptureOptions{
		Terminate:  true,
		Streams:    2,
		ChunkBytes: 128 * 1024,
		Retry:      RetryPolicy{MaxAttempts: 4},
	}
}

type chaosCase struct {
	name  string
	fault faultinject.Fault
	// mustSucceed pins cases that may never fail the operation: a Slow
	// fault only stretches virtual time, it breaks nothing.
	mustSucceed bool
}

// chaosFaults enumerates the single-fault sweep over the injection
// sites: both directions of the host link at the message and RDMA
// layers, the chunk service point (by ordinal, so different stream
// indices get hit), both Snapify-IO daemons, and the COI daemon's
// request dispatch.
func chaosFaults(host, dev string) []chaosCase {
	up := faultinject.LinkKey(dev, host)   // bulk capture direction
	down := faultinject.LinkKey(host, dev) // acks, requests, restore data
	return []chaosCase{
		{"send_up_drop_first", faultinject.Fault{Site: faultinject.SiteSend, Key: up, Kind: faultinject.Drop, Nth: 1}, false},
		{"send_up_drop_mid", faultinject.Fault{Site: faultinject.SiteSend, Key: up, Kind: faultinject.Drop, Nth: 4}, false},
		{"send_up_corrupt", faultinject.Fault{Site: faultinject.SiteSend, Key: up, Kind: faultinject.Corrupt, Nth: 3}, false},
		{"send_up_truncate", faultinject.Fault{Site: faultinject.SiteSend, Key: up, Kind: faultinject.Truncate, Nth: 2}, false},
		{"send_up_slow", faultinject.Fault{Site: faultinject.SiteSend, Key: up, Kind: faultinject.Slow, Nth: 2, Factor: 8}, true},
		{"send_down_drop", faultinject.Fault{Site: faultinject.SiteSend, Key: down, Kind: faultinject.Drop, Nth: 2}, false},
		{"send_down_corrupt", faultinject.Fault{Site: faultinject.SiteSend, Key: down, Kind: faultinject.Corrupt, Nth: 2}, false},
		{"send_down_truncate", faultinject.Fault{Site: faultinject.SiteSend, Key: down, Kind: faultinject.Truncate, Nth: 3}, false},
		{"rdma_up_drop", faultinject.Fault{Site: faultinject.SiteRDMA, Key: up, Kind: faultinject.Drop, Nth: 2}, false},
		{"rdma_up_slow", faultinject.Fault{Site: faultinject.SiteRDMA, Key: up, Kind: faultinject.Slow, Nth: 1, Factor: 4}, true},
		{"rdma_down_drop", faultinject.Fault{Site: faultinject.SiteRDMA, Key: down, Kind: faultinject.Drop, Nth: 1}, false},
		{"chunk_drop_first", faultinject.Fault{Site: faultinject.SiteChunk, Kind: faultinject.Drop, Nth: 1}, false},
		{"chunk_drop_later", faultinject.Fault{Site: faultinject.SiteChunk, Kind: faultinject.Drop, Nth: 5}, false},
		{"chunk_partial_write", faultinject.Fault{Site: faultinject.SiteChunk, Kind: faultinject.PartialWrite, Nth: 2}, false},
		{"daemon_crash_host", faultinject.Fault{Site: faultinject.SiteDaemon, Key: host, Kind: faultinject.Crash, Nth: 2}, false},
		{"daemon_crash_dev", faultinject.Fault{Site: faultinject.SiteDaemon, Key: dev, Kind: faultinject.Crash, Nth: 1}, false},
		{"coi_request_drop", faultinject.Fault{Site: faultinject.SiteRequest, Key: dev, Kind: faultinject.Drop, Nth: 1}, false},
	}
}

// arm installs a one-fault plan on the rig's fabric; disarm clears it.
func arm(r *rig, f faultinject.Fault) {
	r.plat.Server.Fabric.SetInjector(faultinject.New(faultinject.Plan{f}, nil))
}

func disarm(r *rig) { r.plat.Server.Fabric.SetInjector(nil) }

// assertNoPartials scans every file system on the platform for orphan
// ".partial" assembly markers — a failed or retried operation must not
// leave one behind (the daemon-abort regression).
func assertNoPartials(t *testing.T, plat *platform.Platform) {
	t.Helper()
	check := func(where string, files []string) {
		for _, f := range files {
			if strings.HasSuffix(f, ".partial") {
				t.Errorf("orphan partial file on %s: %s", where, f)
			}
		}
	}
	check("host", plat.Host().FS.List(""))
	for _, d := range plat.Server.Devices {
		check(d.Node.String(), d.FS.List(""))
	}
}

// assertAtomicFile asserts the never-torn contract for path: after a
// failed capture the file is either absent (the capture rolled back) or
// complete (the capture committed and only the response was lost).
func assertAtomicFile(t *testing.T, plat *platform.Platform, path string, want int64) {
	t.Helper()
	if !plat.Host().FS.Exists(path) {
		return
	}
	b, _, err := plat.Host().FS.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s after failed capture: %v", path, err)
	}
	if b.Len() != want {
		t.Errorf("torn snapshot file %s: %d bytes, complete is %d", path, b.Len(), want)
	}
}

// Reference sizes of the chaos scenarios' context files, measured once
// on a fault-free run (the scenarios are deterministic, so every rig
// produces the same sizes).
var chaosRef struct {
	once  sync.Once
	full  int64
	delta int64
}

func chaosRefSizes(t *testing.T) (full, delta int64) {
	t.Helper()
	chaosRef.once.Do(func() {
		r := newRig(t, "core_chaos", 1)
		r.count(t, 10)
		base := NewSnapshot("/snap/chaosref/base", r.cp)
		if err := Pause(base); err != nil {
			t.Fatal(err)
		}
		opts := chaosOpts()
		opts.Terminate = false
		if err := base.CaptureBase(opts); err != nil {
			t.Fatal(err)
		}
		if err := Wait(base); err != nil {
			t.Fatal(err)
		}
		chaosRef.full = base.Report.SnapshotBytes
		if err := Resume(base); err != nil {
			t.Fatal(err)
		}
		r.count(t, 30)
		d := NewSnapshot("/snap/chaosref/delta", r.cp)
		if err := Pause(d); err != nil {
			t.Fatal(err)
		}
		if err := d.CaptureDelta(chaosOpts()); err != nil {
			t.Fatal(err)
		}
		if err := Wait(d); err != nil {
			t.Fatal(err)
		}
		chaosRef.delta = d.Report.SnapshotBytes
	})
	if chaosRef.full <= 0 || chaosRef.delta <= 0 {
		t.Fatalf("chaos reference sizes not established: full=%d delta=%d", chaosRef.full, chaosRef.delta)
	}
	return chaosRef.full, chaosRef.delta
}

// TestChaosCaptureSweep runs one faulted capture per injection point.
func TestChaosCaptureSweep(t *testing.T) {
	refFull, _ := chaosRefSizes(t)
	for _, cc := range chaosFaults(simnet.HostNode.String(), simnet.NodeID(1).String()) {
		t.Run(cc.name, func(t *testing.T) {
			r := newRig(t, "core_chaos", 1)
			r.count(t, 20)
			s := NewSnapshot("/snap/chaos", r.cp)
			if err := Pause(s); err != nil {
				t.Fatal(err)
			}
			arm(r, cc.fault)
			err := s.Capture(chaosOpts())
			if err == nil {
				err = Wait(s)
			}
			disarm(r)
			assertNoPartials(t, r.plat)
			if err != nil {
				if cc.mustSucceed {
					t.Fatalf("fault %s may not fail the capture: %v", cc.name, err)
				}
				// Clean failure: nothing torn, nothing orphaned. (A
				// fault on the request channel itself is not
				// retryable — the daemon never saw the capture.)
				t.Logf("capture failed cleanly: %v", err)
				assertAtomicFile(t, r.plat, "/snap/chaos/"+coi.ContextFileName, refFull)
				return
			}
			// Success: the snapshot must restore to the exact state.
			if _, err := Swapin(s, 1, RestoreOptions{}); err != nil {
				t.Fatalf("swap-in after faulted capture: %v", err)
			}
			if got := r.count(t, 40); got != refSum(40) {
				t.Errorf("restored computation = %d, want %d", got, refSum(40))
			}
		})
	}
}

// TestChaosRestoreSweep runs one faulted restore per injection point,
// from a snapshot taken fault-free.
func TestChaosRestoreSweep(t *testing.T) {
	for _, cc := range chaosFaults(simnet.HostNode.String(), simnet.NodeID(1).String()) {
		t.Run(cc.name, func(t *testing.T) {
			r := newRig(t, "core_chaos", 1)
			r.count(t, 20)
			s := NewSnapshot("/snap/chaosr", r.cp)
			if err := Pause(s); err != nil {
				t.Fatal(err)
			}
			if err := s.Capture(chaosOpts()); err != nil {
				t.Fatal(err)
			}
			if err := Wait(s); err != nil {
				t.Fatal(err)
			}
			arm(r, cc.fault)
			_, err := s.Restore(1, RestoreOptions{
				Streams:    2,
				ChunkBytes: 128 * 1024,
				Retry:      RetryPolicy{MaxAttempts: 4},
			})
			disarm(r)
			assertNoPartials(t, r.plat)
			if err != nil {
				if cc.mustSucceed {
					t.Fatalf("fault %s may not fail the restore: %v", cc.name, err)
				}
				// A failed restore must not damage the snapshot it
				// read from.
				t.Logf("restore failed cleanly: %v", err)
				if !r.plat.Host().FS.Exists("/snap/chaosr/" + coi.ContextFileName) {
					t.Error("failed restore destroyed the snapshot")
				}
				return
			}
			if err := s.Resume(); err != nil {
				t.Fatal(err)
			}
			if got := r.count(t, 40); got != refSum(40) {
				t.Errorf("restored computation = %d, want %d", got, refSum(40))
			}
		})
	}
}

// TestChaosDeltaCaptureSweep runs one faulted delta capture per
// injection point over a fault-free base, then restores the chain.
func TestChaosDeltaCaptureSweep(t *testing.T) {
	_, refDelta := chaosRefSizes(t)
	for _, cc := range chaosFaults(simnet.HostNode.String(), simnet.NodeID(1).String()) {
		t.Run(cc.name, func(t *testing.T) {
			r := newRig(t, "core_chaos", 1)
			r.count(t, 10)
			base := NewSnapshot("/snap/chbase", r.cp)
			if err := Pause(base); err != nil {
				t.Fatal(err)
			}
			opts := chaosOpts()
			opts.Terminate = false
			if err := base.CaptureBase(opts); err != nil {
				t.Fatal(err)
			}
			if err := Wait(base); err != nil {
				t.Fatal(err)
			}
			if err := Resume(base); err != nil {
				t.Fatal(err)
			}
			r.count(t, 30)
			d := NewSnapshot("/snap/chdelta", r.cp)
			if err := Pause(d); err != nil {
				t.Fatal(err)
			}
			arm(r, cc.fault)
			err := d.CaptureDelta(chaosOpts())
			if err == nil {
				err = Wait(d)
			}
			disarm(r)
			assertNoPartials(t, r.plat)
			if err != nil {
				if cc.mustSucceed {
					t.Fatalf("fault %s may not fail the delta capture: %v", cc.name, err)
				}
				t.Logf("delta capture failed cleanly: %v", err)
				assertAtomicFile(t, r.plat, "/snap/chdelta/"+coi.DeltaFileName, refDelta)
				return
			}
			if _, err := d.RestoreChain("/snap/chbase", []string{"/snap/chdelta"}, 1, RestoreOptions{}); err != nil {
				t.Fatalf("restore chain after faulted delta capture: %v", err)
			}
			if err := d.Resume(); err != nil {
				t.Fatal(err)
			}
			if got := r.count(t, 50); got != refSum(50) {
				t.Errorf("restored computation = %d, want %d", got, refSum(50))
			}
		})
	}
}
