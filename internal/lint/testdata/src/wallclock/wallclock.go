// Package wallclock is a golden fixture for the wallclock analyzer.
package wallclock

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want "wall-clock time.Sleep breaks simulated-time determinism"
	_ = time.Since(time.Time{})  // want "wall-clock time.Since breaks simulated-time determinism"
	return time.Now()            // want "wall-clock time.Now breaks simulated-time determinism"
}

func good() time.Duration {
	// Constructors and conversions that do not read the host clock stay
	// in scope-free territory.
	t := time.Unix(0, 0)
	return time.Duration(t.Nanosecond())
}

func suppressed() time.Time {
	return time.Now() //nolint:wallclock // golden fixture: a justified directive suppresses the finding
}
