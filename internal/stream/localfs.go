package stream

import (
	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/ramfs"
	"snapify/internal/simclock"
)

// HostFSSink writes a stream to the host file system as a local file (the
// path a host-process checkpoint takes: no PCIe hop, page-cache speed).
type HostFSSink struct{ w *hostfs.Writer }

// NewHostFSSink opens path on fs for streaming writes.
func NewHostFSSink(fs *hostfs.FS, path string) (*HostFSSink, error) {
	w, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	return &HostFSSink{w: w}, nil
}

// WriteBlob implements Sink.
func (s *HostFSSink) WriteBlob(b blob.Blob) (Cost, error) {
	d, err := s.w.WriteBlob(b)
	return Cost{Stages: []simclock.Duration{d}}, err
}

// Close implements Sink.
func (s *HostFSSink) Close() error { return s.w.Close() }

// Abort implements Sink.
func (s *HostFSSink) Abort() { s.w.Abort() }

// HostFSSource reads a stream from the host file system.
type HostFSSource struct{ r *hostfs.Reader }

// NewHostFSSource opens path on fs for streaming reads.
func NewHostFSSource(fs *hostfs.FS, path string) (*HostFSSource, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return &HostFSSource{r: r}, nil
}

// Next implements Source.
func (s *HostFSSource) Next(max int64) (blob.Blob, Cost, error) {
	b, d, err := s.r.Next(max)
	return b, Cost{Stages: []simclock.Duration{d}}, err
}

// Size implements Source.
func (s *HostFSSource) Size() int64 { return s.r.Size() }

// Close implements Source.
func (s *HostFSSource) Close() error { return nil }

// RamFSSink writes a stream to a coprocessor's RAM file system — the
// "Local" storage mode of Table 4. Capacity errors surface from WriteBlob
// when the snapshot no longer fits in card memory.
type RamFSSink struct{ w *ramfs.Writer }

// NewRamFSSink opens path on fs for streaming writes.
func NewRamFSSink(fs *ramfs.FS, path string) (*RamFSSink, error) {
	w, err := fs.Create(path)
	if err != nil {
		return nil, err
	}
	return &RamFSSink{w: w}, nil
}

// WriteBlob implements Sink.
func (s *RamFSSink) WriteBlob(b blob.Blob) (Cost, error) {
	d, err := s.w.WriteBlob(b)
	return Cost{Stages: []simclock.Duration{d}}, err
}

// Close implements Sink.
func (s *RamFSSink) Close() error { return s.w.Close() }

// Abort implements Sink.
func (s *RamFSSink) Abort() { s.w.Abort() }

// RamFSSource reads a stream from a coprocessor's RAM file system.
type RamFSSource struct{ r *ramfs.Reader }

// NewRamFSSource opens path on fs for streaming reads.
func NewRamFSSource(fs *ramfs.FS, path string) (*RamFSSource, error) {
	r, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	return &RamFSSource{r: r}, nil
}

// Next implements Source.
func (s *RamFSSource) Next(max int64) (blob.Blob, Cost, error) {
	b, d, err := s.r.Next(max)
	return b, Cost{Stages: []simclock.Duration{d}}, err
}

// Size implements Source.
func (s *RamFSSource) Size() int64 { return s.r.Size() }

// Close implements Source.
func (s *RamFSSource) Close() error { return nil }
