// Command snapbench regenerates every table and figure of the paper's
// evaluation (Section 7) on the simulated platform and prints them in the
// paper's layout. Times are virtual (see internal/simclock and DESIGN.md);
// the shapes — who wins, by what factor, where the crossovers fall — are
// the reproduction targets.
//
// Usage:
//
//	snapbench -all            # everything (the default)
//	snapbench -table 3        # one table (2, 3, or 4)
//	snapbench -fig 10         # one figure (9, 10, or 11)
//	snapbench -check          # also verify the paper's qualitative claims
//	snapbench -check baselines/
//	                          # regression gate: re-run every committed
//	                          # BENCH_*.json at its recorded parameters and
//	                          # fail on any drifted non-wall field
//	snapbench -parallel -analyze
//	                          # also print a critical-path breakdown of the
//	                          # run's trace (works with -store and -migrate)
//	snapbench -parallel -json BENCH_capture.json
//	                          # the multi-stream capture sweep, JSON'd
//	snapbench -parallel -smoke
//	                          # same sweep on a small image (CI gate)
//	snapbench -parallel -trace out.json
//	                          # also export the sweep's virtual-clock trace
//	                          # (Chrome trace-event JSON; open in Perfetto)
//	snapbench -store -json BENCH_dedup.json
//	                          # repeated swap cycles through the dedup store
//	                          # vs plain files: bytes shipped each way
//	snapbench -store -smoke   # same comparison on a small image (CI gate)
//	snapbench -migrate -json BENCH_migrate.json
//	                          # stop-the-world vs live (pre-copy) migration
//	                          # downtime across the image-size grid
//	snapbench -migrate -smoke # same sweep on small images (CI gate)
//	snapbench -faults plan.json
//	                          # capture under an injected fault plan; report
//	                          # the degraded-path (retry/replay) overhead
package main

import (
	"flag"
	"fmt"
	"os"

	"snapify/internal/experiments"
	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/obs/analyze"
	"snapify/internal/simclock"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (2, 3, or 4)")
	fig := flag.Int("fig", 0, "regenerate one figure (9, 10, or 11)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	parallel := flag.Bool("parallel", false, "run the multi-stream parallel capture sweep")
	store := flag.Bool("store", false, "run the dedup-store swap-cycle comparison")
	migrate := flag.Bool("migrate", false, "run the stop-the-world vs live migration downtime sweep")
	federation := flag.Bool("federation", false, "run the cross-host federation benchmark: migration dedup + host-kill recovery from replicas")
	fleet := flag.Bool("fleet", false, "run the fleet control-plane benchmark: seeded bursty trace across an oversubscription sweep")
	jsonPath := flag.String("json", "", "with -parallel, -store, or -migrate: also write the result as JSON to this file")
	tracePath := flag.String("trace", "", "with -parallel, -store, or -migrate: write the run's Chrome trace-event JSON to this file (open in Perfetto)")
	smoke := flag.Bool("smoke", false, "with -parallel, -store, -migrate, or -faults: use a small image (fast CI smoke, shape still checked)")
	faults := flag.String("faults", "", "path to a fault-plan JSON; benchmark a capture riding out the plan via retry (see internal/faultinject)")
	all := flag.Bool("all", false, "regenerate everything")
	check := flag.Bool("check", false, "verify the paper's qualitative claims against the results; with a directory argument, run the baseline regression gate instead")
	analyzeTrace := flag.Bool("analyze", false, "with -parallel, -store, or -migrate: print a critical-path breakdown of the run's trace")
	flag.Parse()

	// `snapbench -check baselines/` is the regression gate: re-run every
	// committed BENCH_*.json at its recorded parameters and exit nonzero
	// if any non-wall field drifted. It runs alone — gating and
	// regenerating in one invocation would compare a thing to itself.
	if *check && flag.NArg() > 0 {
		report, ok, err := experiments.CheckBaselines(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(report)
		if !ok {
			fmt.Fprintln(os.Stderr, "snapbench: baseline regression gate FAILED")
			os.Exit(1)
		}
		fmt.Println("[baseline regression gate: OK]")
		return
	}

	if !*all && *table == 0 && *fig == 0 && !*ablations && !*parallel && !*store && !*migrate && !*federation && !*fleet && *faults == "" {
		*all = true
	}

	type renderable interface {
		Render() string
		CheckShape() error
	}
	run := func(name string, f func() (renderable, error)) {
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *check {
			if err := res.CheckShape(); err != nil {
				fmt.Fprintf(os.Stderr, "snapbench: %s shape check FAILED: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("[%s shape check: OK]\n\n", name)
		}
	}

	if *all || *table == 2 {
		fmt.Println(experiments.Table2())
	}
	if *all || *table == 3 {
		run("table 3", func() (renderable, error) { return experiments.Table3() })
	}
	if *all || *table == 4 {
		run("table 4", func() (renderable, error) { return experiments.Table4() })
	}
	if *all || *fig == 9 {
		run("fig 9", func() (renderable, error) { return experiments.Fig9() })
	}
	if *all || *fig == 10 {
		run("fig 10", func() (renderable, error) { return experiments.Fig10() })
	}
	if *all || *fig == 11 {
		run("fig 11", func() (renderable, error) { return experiments.Fig11() })
	}
	if *all || *ablations {
		runAblations(*check)
	}
	if *all || *parallel {
		runParallel(*smoke, *jsonPath, *tracePath, *analyzeTrace)
	}
	if *all || *store {
		// -all writes no files; explicit -store honors -json/-trace.
		jp, tp := *jsonPath, *tracePath
		if *all && !*store {
			jp, tp = "", ""
		}
		runStore(*smoke, jp, tp, *analyzeTrace)
	}
	if *all || *migrate {
		jp, tp := *jsonPath, *tracePath
		if *all && !*migrate {
			jp, tp = "", ""
		}
		runMigrate(*smoke, jp, tp, *analyzeTrace)
	}
	if *all || *federation {
		jp := *jsonPath
		if *all && !*federation {
			jp = ""
		}
		runFederation(*smoke, jp)
	}
	if *all || *fleet {
		jp, tp := *jsonPath, *tracePath
		if *all && !*fleet {
			jp, tp = "", ""
		}
		runFleet(*smoke, jp, tp)
	}
	if *faults != "" {
		runFaults(*faults, *smoke)
	}
}

// runFleet executes the fleet control-plane benchmark: the seeded
// bursty trace against the model backend, once per oversubscription
// ratio. Its shape check (jobs conserved, everything admitted
// completes, evacuation inside its deadline, oversubscription swapping
// and lifting utilization, the event heap staying O(log n)) always
// runs: the sweep exists to pin those claims.
func runFleet(smoke bool, jsonPath, tracePath string) {
	p := experiments.DefaultFleetParams()
	if smoke {
		p = experiments.SmokeFleetParams()
	}
	res, err := experiments.FleetBench(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: fleet: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	if err := res.CheckShape(); err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: fleet shape check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("[fleet shape check: OK]")
	if jsonPath != "" {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: fleet: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", jsonPath)
	}
	if tracePath != "" {
		out := res.TraceJSON()
		if err := obs.ValidateChromeTrace(out); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: trace validation FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(tracePath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", tracePath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: valid Chrome trace; open at ui.perfetto.dev]\n", tracePath)
	}
}

// runFederation executes the cross-host federation benchmark. Its shape
// check (>= 2x cross-host dedup on warm legs, byte-identical
// restart-from-replica after a host kill, repaired replica sets, clean
// fsck) always runs: the benchmark exists to pin those claims.
func runFederation(smoke bool, jsonPath string) {
	size := int64(experiments.FederationImageBytes)
	if smoke {
		size = 96 * simclock.MiB
	}
	res, err := experiments.FederationBench(size, experiments.FederationHosts, experiments.FederationLegs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: federation: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	if err := res.CheckShape(); err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: federation shape check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("[federation shape check: OK]")
	if jsonPath != "" {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: federation: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", jsonPath)
	}
}

// runFaults benchmarks one capture under the fault plan at planPath: a
// clean baseline, then the same capture with the plan armed on the
// fabric, reporting the degraded-path (retry + watermark replay) overhead.
// The shape check always runs — the benchmark exists to pin that the
// faulted snapshot is byte-for-byte the clean one, only later.
func runFaults(planPath string, smoke bool) {
	data, err := os.ReadFile(planPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: reading fault plan: %v\n", err)
		os.Exit(1)
	}
	plan, err := faultinject.ParsePlan(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: %s: %v\n", planPath, err)
		os.Exit(1)
	}
	size := int64(experiments.FaultedCaptureImageBytes)
	if smoke {
		size = 256 * simclock.MiB
	}
	res, err := experiments.FaultedCapture(size, plan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: faulted capture: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	if err := res.CheckShape(); err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: faulted capture shape check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("[faulted capture shape check: OK]")
}

// runParallel executes the multi-stream capture sweep. Its shape check
// (4 streams >= 2x serial, byte-identical snapshots) always runs: the
// sweep exists to pin that claim, -check or not.
func runParallel(smoke bool, jsonPath, tracePath string, doAnalyze bool) {
	size := int64(experiments.ParallelCaptureImageBytes)
	if smoke {
		size = 256 * simclock.MiB
	}
	res, err := experiments.ParallelCapture(size, experiments.ParallelCaptureStreams)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: parallel capture: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	if err := res.CheckShape(); err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: parallel capture shape check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("[parallel capture shape check: OK]")
	if doAnalyze {
		printCriticalPath(res.TraceJSON())
	}
	if jsonPath != "" {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: parallel capture: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", jsonPath)
	}
	if tracePath != "" {
		out := res.TraceJSON()
		if err := obs.ValidateChromeTrace(out); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: trace validation FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(tracePath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", tracePath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: valid Chrome trace; open at ui.perfetto.dev]\n", tracePath)
	}
}

// runStore executes the dedup-store swap-cycle comparison. Its shape
// check (>= 3x shipped-byte reduction, checksum-identical restores,
// negotiation spans scoped to captures, GC back to zero chunks) always
// runs: the benchmark exists to pin those claims, -check or not.
func runStore(smoke bool, jsonPath, tracePath string, doAnalyze bool) {
	size := int64(experiments.DedupSwapImageBytes)
	if smoke {
		size = 256 * simclock.MiB
	}
	res, err := experiments.DedupSwap(size, experiments.DedupSwapCycles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: dedup swap: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	if err := res.CheckShape(); err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: dedup swap shape check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("[dedup swap shape check: OK]")
	if doAnalyze {
		printCriticalPath(res.TraceJSON())
	}
	if jsonPath != "" {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: dedup swap: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", jsonPath)
	}
	if tracePath != "" {
		out := res.TraceJSON()
		if err := obs.ValidateChromeTrace(out); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: trace validation FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(tracePath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", tracePath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: valid Chrome trace; open at ui.perfetto.dev]\n", tracePath)
	}
}

// runMigrate executes the stop-the-world vs live migration downtime
// sweep. Its shape check (byte-identical restores, live downtime bounded
// while stop-the-world grows with the image, store drained after
// release) always runs: the sweep exists to pin those claims.
func runMigrate(smoke bool, jsonPath, tracePath string, doAnalyze bool) {
	sizes := experiments.MigrateSweepSizes
	if smoke {
		sizes = experiments.MigrateSweepSmokeSizes
	}
	res, err := experiments.MigrateSweep(sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: migrate sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
	if err := res.CheckShape(); err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: migrate sweep shape check FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("[migrate sweep shape check: OK]")
	if doAnalyze {
		printCriticalPath(res.TraceJSON())
	}
	if jsonPath != "" {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: migrate sweep: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", jsonPath)
	}
	if tracePath != "" {
		out := res.TraceJSON()
		if err := obs.ValidateChromeTrace(out); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: trace validation FAILED: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(tracePath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: writing %s: %v\n", tracePath, err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s: valid Chrome trace; open at ui.perfetto.dev]\n", tracePath)
	}
}

// printCriticalPath parses a run's Chrome trace and prints the
// critical-path breakdown (chain, blame table, straggler skew, pre-copy
// rounds) — the -analyze self-profile.
func printCriticalPath(trace []byte) {
	spans, err := analyze.ParseChromeTrace(trace)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: parsing trace for analysis: %v\n", err)
		os.Exit(1)
	}
	report, err := analyze.CriticalPath(spans)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: critical path: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(report.Render(10))
}

// runAblations executes the design-choice sweeps of DESIGN.md §6.
func runAblations(check bool) {
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "snapbench: %s: %v\n", name, err)
		os.Exit(1)
	}
	buf, err := experiments.BufSizeAblation()
	if err != nil {
		fail("buffer ablation", err)
	}
	fmt.Println(experiments.RenderBufSizeAblation(buf))
	incr, err := experiments.IncrementalAblation()
	if err != nil {
		fail("incremental ablation", err)
	}
	fmt.Println(experiments.RenderIncrementalAblation(incr))
	wsz, err := experiments.WsizeAblation()
	if err != nil {
		fail("wsize ablation", err)
	}
	fmt.Println(experiments.RenderWsizeAblation(wsz))
	if check {
		if err := experiments.CheckBufSizeAblation(buf); err != nil {
			fail("buffer ablation shape", err)
		}
		if err := experiments.CheckIncrementalAblation(incr); err != nil {
			fail("incremental ablation shape", err)
		}
		if err := experiments.CheckWsizeAblation(wsz); err != nil {
			fail("wsize ablation shape", err)
		}
		fmt.Println("[ablation shape checks: OK]")
	}
}
