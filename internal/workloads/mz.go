package workloads

import (
	"fmt"

	"snapify/internal/mpi"
	"snapify/internal/simclock"
)

// RankSpec returns the per-rank footprint of the multi-zone benchmark when
// its zones are divided across the given number of ranks. A fixed per-rank
// base (runtime, solver workspace) keeps the shrink sub-linear, as in the
// NAS-MZ implementations.
func (m MZSpec) RankSpec(ranks int) Spec {
	r := int64(ranks)
	const base = 48 * simclock.MiB
	return Spec{
		Code:           m.Code,
		Name:           m.Code + " (NAS multi-zone, class C)",
		HostMem:        m.TotalHostMem/r + base/2,
		DeviceMem:      m.TotalDeviceMem/r + base,
		LocalStore:     m.TotalLocal/r + base/4,
		Calls:          m.Iterations,
		StepsPerCall:   8,
		ComputePerCall: m.ComputePerIter / simclock.Duration(ranks),
		InPerCall:      m.ExchangeBytes,
		OutPerCall:     m.ExchangeBytes,
	}
}

// LaunchMZRank starts rank r's zone of the benchmark on its node's first
// coprocessor and attaches it for coordinated CR.
func LaunchMZRank(r *mpi.Rank, m MZSpec, ranks int) (*Instance, error) {
	in, err := LaunchWithHost(r.Plat, m.RankSpec(ranks), 1, r.Host, r.TL)
	if err != nil {
		return nil, fmt.Errorf("workloads: launching %s rank %d: %w", m.Code, r.ID, err)
	}
	r.AttachApp(in.CP)
	return in, nil
}

// AttachMZRank rebuilds a rank's Instance after a coordinated restart.
func AttachMZRank(r *mpi.Rank, m MZSpec, ranks int) (*Instance, error) {
	in, err := Attach(r.Plat, m.RankSpec(ranks), r.Host, r.App().Proc())
	if err != nil {
		return nil, fmt.Errorf("workloads: attaching %s rank %d: %w", m.Code, r.ID, err)
	}
	return in, nil
}

// RunMZIterations advances rank r's zone by iters time steps: each step is
// one offload call followed by a boundary exchange with the ring
// neighbors and a barrier — the channel-drained point where a coordinated
// checkpoint may land.
func RunMZIterations(r *mpi.Rank, in *Instance, iters int) error {
	world := r.World()
	size := world.Size()
	boundary := make([]byte, in.Spec.InPerCall)
	for i := 0; i < iters && !in.Done(); i++ {
		if _, err := in.RunCalls(1); err != nil {
			return err
		}
		if size > 1 {
			next := (r.ID + 1) % size
			prev := (r.ID + size - 1) % size
			if err := r.Send(next, 1, boundary); err != nil {
				return err
			}
			if _, err := r.Recv(prev, 1); err != nil {
				return err
			}
		}
		r.Barrier()
	}
	return nil
}
