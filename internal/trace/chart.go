package trace

import (
	"fmt"
	"strings"
)

// BarChart renders horizontal bars — the text analogue of the paper's bar
// figures. Stacked segments reproduce the breakdown figures (Fig 10a's
// pause / host / device stacks).
type BarChart struct {
	Title    string
	Unit     string // label appended to values, e.g. "s"
	Segments []string
	width    int
	rows     []barRow
}

type barRow struct {
	label  string
	values []float64
	note   string
}

// NewBarChart returns a chart with the given stacked-segment names (one
// segment for plain bars).
func NewBarChart(title, unit string, segments ...string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Segments: segments, width: 46}
}

// Bar appends a bar; values are per-segment (padded with zeros if short).
// note is printed after the total (e.g. an overhead percentage).
func (c *BarChart) Bar(label string, values []float64, note string) *BarChart {
	c.rows = append(c.rows, barRow{label: label, values: values, note: note})
	return c
}

// segment glyphs cycle for stacked bars.
var glyphs = []rune{'█', '▓', '▒', '░'}

// String renders the chart.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(c.Segments) > 1 {
		b.WriteString("  key:")
		for i, s := range c.Segments {
			fmt.Fprintf(&b, " %c %s", glyphs[i%len(glyphs)], s)
		}
		b.WriteByte('\n')
	}
	var maxTotal float64
	labelW := 0
	for _, r := range c.rows {
		var t float64
		for _, v := range r.values {
			t += v
		}
		if t > maxTotal {
			maxTotal = t
		}
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	for _, r := range c.rows {
		fmt.Fprintf(&b, "  %-*s ", labelW, r.label)
		var total float64
		cells := 0
		for i, v := range r.values {
			total += v
			n := int(v / maxTotal * float64(c.width))
			if v > 0 && n == 0 {
				n = 1
			}
			cells += n
			b.WriteString(strings.Repeat(string(glyphs[i%len(glyphs)]), n))
		}
		b.WriteString(strings.Repeat(" ", c.width+2-cells))
		fmt.Fprintf(&b, "%8.2f%s", total, c.Unit)
		if r.note != "" {
			fmt.Fprintf(&b, "  %s", r.note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
