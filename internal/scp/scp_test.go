package scp

import (
	"testing"

	"snapify/internal/blob"
	"snapify/internal/phi"
	"snapify/internal/simclock"
	"snapify/internal/vfs"
)

func TestCopyDeviceToHost(t *testing.T) {
	s := phi.NewServer(phi.ServerConfig{Devices: 1})
	dev, host := s.Device(1), s.Host
	content := blob.Concat(blob.FromBytes([]byte("payload")), blob.Synthetic(5, simclock.MiB))
	if _, err := dev.FS.WriteFile("/tmp/f", content); err != nil {
		t.Fatal(err)
	}
	d, err := Copy(s.Fabric, dev.Node, vfs.Ram(dev.FS), "/tmp/f", host.Node, vfs.Host(host.FS), "/f")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := host.FS.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(got, content) {
		t.Error("content mismatch")
	}
	if d < s.Model().SCPHandshake {
		t.Errorf("cost %v below handshake cost", d)
	}
}

func TestCopyIsCipherBound(t *testing.T) {
	s := phi.NewServer(phi.ServerConfig{Devices: 1})
	content := blob.Synthetic(9, simclock.GiB)
	s.Host.FS.WriteFile("/big", content)
	d, err := Copy(s.Fabric, s.Host.Node, vfs.Host(s.Host.FS), "/big", s.Device(1).Node, vfs.Ram(s.Device(1).FS), "/tmp/big")
	if err != nil {
		t.Fatal(err)
	}
	bound := simclock.Rate(s.Model().SCPCipherBandwidth)(simclock.GiB)
	if d < bound {
		t.Errorf("scp of 1 GiB cost %v, below cipher bound %v", d, bound)
	}
}

func TestCopyMissingSource(t *testing.T) {
	s := phi.NewServer(phi.ServerConfig{Devices: 1})
	if _, err := Copy(s.Fabric, 1, vfs.Ram(s.Device(1).FS), "/nope", 0, vfs.Host(s.Host.FS), "/f"); err == nil {
		t.Fatal("copy of missing source must fail")
	}
}

func TestCopyIntoFullCardFails(t *testing.T) {
	s := phi.NewServer(phi.ServerConfig{Devices: 1, Device: phi.DeviceConfig{MemBytes: simclock.GiB}})
	content := blob.Zeros(2 * simclock.GiB)
	s.Host.FS.WriteFile("/big", content)
	if _, err := Copy(s.Fabric, 0, vfs.Host(s.Host.FS), "/big", 1, vfs.Ram(s.Device(1).FS), "/tmp/big"); err == nil {
		t.Fatal("copy exceeding card memory must fail")
	}
	if s.Device(1).FS.Exists("/tmp/big") {
		t.Error("partial file left on card")
	}
}
