package core

import (
	"snapify/internal/coi"
	"snapify/internal/simnet"
)

// The three API use scenarios of Section 5, composed from the five
// primitives exactly as the paper's sample code does (Fig 6 and Fig 7).
// Each takes its options struct directly; the zero value is the paper's
// behavior. Migration lives in migration.go — see Migrate and Migration.

// Swapout captures and terminates the offload process, freeing the card
// for another tenant (snapify_swapout, Fig 6a). The returned Snapshot
// represents the swapped-out process and is the input to Swapin. opts
// selects parallel streams, retry, and the dedup store; Terminate is
// forced on — a swap-out that left the process running would defeat its
// purpose.
func Swapout(path string, cp *coi.Process, opts CaptureOptions) (*Snapshot, error) {
	s := NewSnapshot(path, cp)
	if err := s.Pause(); err != nil {
		return nil, err
	}
	opts.Terminate = true
	if err := s.Capture(opts); err != nil {
		return nil, err
	}
	if err := s.Wait(); err != nil {
		return nil, err
	}
	return s, nil
}

// Swapin restores a swapped-out offload process on the given device and
// resumes it (snapify_swapin, Fig 6a), returning the revived handle. opts
// selects parallel range streams, retry, and the store-manifest
// pre-check.
func Swapin(s *Snapshot, deviceTo simnet.NodeID, opts RestoreOptions) (*coi.Process, error) {
	cp, err := s.Restore(deviceTo, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Resume(); err != nil {
		return nil, err
	}
	return cp, nil
}
