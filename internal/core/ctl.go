package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"snapify/internal/coi"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simnet"
)

// The snapify command-line utility (Section 5) provides swapping and
// migration transparently: its arguments are the PID of the host process
// and a command; it signals the host process and submits the command
// through a pipe, and the Snapify signal handler in the host process calls
// the corresponding API function.

// CommandServer is the Snapify-installed signal handler of one host
// process.
type CommandServer struct {
	plat *platform.Platform

	mu       sync.Mutex
	cp       *coi.Process
	swapped  *Snapshot // set while the offload process is swapped out
	viaStore bool      // the swapped-out snapshot lives in the dedup store

	cmdPipe *proc.PipeEnd // server end
	ctlPipe *proc.PipeEnd // utility end
}

// InstallCommandServer installs the Snapify signal handler in the host
// process that owns cp. The snapify utility submits commands with
// SubmitCommand against the host PID.
func InstallCommandServer(plat *platform.Platform, cp *coi.Process) *CommandServer {
	srv := &CommandServer{plat: plat, cp: cp}
	srv.cmdPipe, srv.ctlPipe = proc.NewPipe(plat.Model())
	cp.HostProc().HandleSignal(proc.SigCommand, srv.handleOne)
	return srv
}

// Proc returns the current offload handle.
func (s *CommandServer) Proc() *coi.Process {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cp
}

// Swapped reports whether the offload process is currently swapped out.
func (s *CommandServer) Swapped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.swapped != nil
}

// handleOne services one submitted command (runs in signal-handler
// context).
func (s *CommandServer) handleOne() {
	raw, _, err := s.cmdPipe.Recv()
	if err != nil {
		return
	}
	reply := s.execute(string(raw))
	s.cmdPipe.Send([]byte(reply)) //nolint:errcheck // fire-and-forget reply: a dead controller surfaces on the next Recv
}

// execute parses and runs one command, returning "ok" or "error: ...".
func (s *CommandServer) execute(cmd string) string {
	fields := strings.Fields(cmd)
	if len(fields) == 0 {
		return "error: empty command"
	}
	fail := func(err error) string { return "error: " + err.Error() }

	s.mu.Lock()
	defer s.mu.Unlock()
	switch fields[0] {
	case "swapout":
		store, ok := storeFlagArg(fields, 3)
		if !ok {
			return "error: usage: swapout <snapshot-dir> [store]"
		}
		if s.swapped != nil {
			return "error: already swapped out"
		}
		var copts CaptureOptions
		copts.Store.Enabled = store
		snap, err := Swapout(fields[1], s.cp, copts)
		if err != nil {
			return fail(err)
		}
		s.swapped = snap
		s.viaStore = store
		return "ok"
	case "swapin":
		if len(fields) != 2 {
			return "error: usage: swapin <device>"
		}
		if s.swapped == nil {
			return "error: not swapped out"
		}
		dev, err := strconv.Atoi(fields[1])
		if err != nil {
			return fail(err)
		}
		var ropts RestoreOptions
		ropts.Store.Enabled = s.viaStore
		cp, err := Swapin(s.swapped, simnet.NodeID(dev), ropts)
		if err != nil {
			return fail(err)
		}
		s.cp = cp
		s.swapped = nil
		s.viaStore = false
		return "ok"
	case "migrate":
		opts, ok := migrateArgs(fields)
		if !ok {
			return "error: usage: migrate <device> <snapshot-dir> [store|live]"
		}
		if s.swapped != nil {
			return "error: swapped out; swap in first"
		}
		dev, err := strconv.Atoi(fields[1])
		if err != nil {
			return fail(err)
		}
		opts.DeviceTo = simnet.NodeID(dev)
		opts.Path = fields[2]
		cp, snap, err := Migrate(s.cp, opts)
		if err != nil {
			return fail(err)
		}
		s.cp = cp
		return migrateReply(&snap.Report)
	default:
		return fmt.Sprintf("error: unknown command %q", fields[0])
	}
}

// migrateArgs interprets the migrate command's optional trailing mode
// token: none (stop-the-world, plain files), "store" (stop-the-world
// through the dedup store), or "live" (pre-copy live migration — the
// store data path is implied).
func migrateArgs(fields []string) (MigrateOptions, bool) {
	var opts MigrateOptions
	switch {
	case len(fields) == 3:
		return opts, true
	case len(fields) == 4 && fields[3] == "store":
		opts.Capture.Store.Enabled = true
		opts.Restore.Store.Enabled = true
		return opts, true
	case len(fields) == 4 && fields[3] == "live":
		opts.Precopy.MaxRounds = defaultLiveRounds
		return opts, true
	}
	return MigrateOptions{}, false
}

// defaultLiveRounds bounds the pre-copy iterations of a "migrate ... live"
// command (and of scheduler evacuations that enable live migration
// without tuning it).
const defaultLiveRounds = 3

// migrateReply formats a migration's Report for the utility: one line per
// pre-copy round plus the final downtime.
func migrateReply(r *Report) string {
	var b strings.Builder
	b.WriteString("ok")
	for _, pr := range r.Precopy {
		fmt.Fprintf(&b, "\nround %d: dirty %d B, shipped %d B", pr.Round, pr.DirtyBytes, pr.ShippedBytes)
		if pr.Skipped {
			b.WriteString(" (under floor, not shipped)")
		}
	}
	fmt.Fprintf(&b, "\ndowntime %v", r.Downtime)
	return b.String()
}

// storeFlagArg interprets an optional trailing "store" token on a
// command: fields may have max-1 entries (the plain data path) or max
// entries whose last is "store" (capture through the dedup store).
func storeFlagArg(fields []string, max int) (store, ok bool) {
	switch {
	case len(fields) == max-1:
		return false, true
	case len(fields) == max && fields[max-1] == "store":
		return true, true
	}
	return false, false
}

// SubmitCommand is the utility side: resolve the host PID, submit the
// command through the server's pipe, signal the process, and collect the
// reply. On success it returns the server's reply text (the "ok" line,
// plus per-round and downtime detail for a migration).
func (s *CommandServer) SubmitCommand(cmd string) (string, error) {
	host := s.cp.HostProc()
	if _, err := s.plat.Procs.Lookup(host.PID()); err != nil {
		return "", fmt.Errorf("core: snapify utility: %w", err)
	}
	if _, err := s.ctlPipe.Send([]byte(cmd)); err != nil {
		return "", err
	}
	if err := host.Deliver(proc.SigCommand); err != nil {
		return "", err
	}
	raw, _, err := s.ctlPipe.Recv()
	if err != nil {
		return "", err
	}
	reply := string(raw)
	if reply != "ok" && !strings.HasPrefix(reply, "ok\n") {
		return "", errors.New("core: snapify utility: " + strings.TrimPrefix(reply, "error: "))
	}
	return reply, nil
}
