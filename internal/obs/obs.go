// Package obs is the observability spine of the reproduction: a span
// tracer keyed on the virtual simclock (exported as Chrome trace-event
// JSON, loadable in Perfetto) and a metrics registry of counters, gauges,
// and histograms with a Prometheus-style text exposition.
//
// Everything here measures *virtual* time — the same simclock.Duration
// the cost model advances — never the wall clock. A span is where a
// virtual duration is born; the core.Report phase fields are derived
// from spans, not the other way around (DESIGN.md §9).
//
// Every method is safe on a nil receiver: a Platform built without
// observability (obs == nil) costs nothing and instruments nothing, so
// call sites never need nil guards.
package obs

// Obs bundles the tracer and the metrics registry for one Platform.
// It is per-Platform, not process-global: the test suite runs many
// simulated platforms concurrently and their timelines are unrelated.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New returns an Obs with an empty tracer and registry.
func New() *Obs {
	return &Obs{Tracer: NewTracer(), Metrics: NewRegistry()}
}

// TracerOf returns o.Tracer, tolerating a nil o.
func (o *Obs) TracerOf() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// MetricsOf returns o.Metrics, tolerating a nil o.
func (o *Obs) MetricsOf() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
