package core

import (
	"testing"

	"snapify/internal/coi"
)

// liveOpts is the live-migration configuration the functional tests use:
// small chunks so dirty diffs resolve at a useful granularity, a bounded
// round budget, and the striped data path.
func liveOpts(path string) MigrateOptions {
	return MigrateOptions{
		DeviceTo: 2,
		Path:     path,
		Precopy:  PrecopyOptions{MaxRounds: 4, ChunkBytes: 32 * 1024, Streams: 2},
	}
}

// TestLiveMigrateSessionRounds drives a Migration session by hand,
// interleaving pre-copy rounds with application work — the dirty set must
// shrink from "the whole image" to "what the interleaved work touched",
// and the switch-over must carry the computation byte-identically.
func TestLiveMigrateSessionRounds(t *testing.T) {
	r := newRig(t, "core_live_mig", 2)
	r.count(t, 20)

	m, err := NewMigration(r.cp, liveOpts("/snap/live"))
	if err != nil {
		t.Fatal(err)
	}
	first, done, err := m.Round()
	if err != nil {
		t.Fatal(err)
	}
	if first.Skipped {
		t.Fatal("round 1 skipped: the first round always ships the full image")
	}
	if first.DirtyBytes != first.ImageBytes {
		t.Errorf("round 1 dirty %d != image %d: everything is dirty on round 1", first.DirtyBytes, first.ImageBytes)
	}
	if first.ShippedBytes <= 0 || first.ChunksNeeded <= 0 {
		t.Errorf("round 1 shipped nothing: %+v", first)
	}

	// The process keeps computing between rounds; the next round's dirty
	// set is what that work touched, not the whole image.
	iters := uint64(40)
	r.count(t, iters)
	var last PrecopyRound
	for !done {
		last, done, err = m.Round()
		if err != nil {
			t.Fatal(err)
		}
		if last.DirtyBytes >= first.DirtyBytes {
			t.Errorf("round %d dirty %d did not shrink from round 1's %d", last.Round, last.DirtyBytes, first.DirtyBytes)
		}
		if !done {
			iters += 10
			r.count(t, iters)
		}
	}
	if _, _, err := m.Round(); err == nil {
		t.Error("Round after convergence must fail")
	}

	cp2, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if cp2.DeviceNode() != 2 {
		t.Errorf("process on %v after live migration, want mic1", cp2.DeviceNode())
	}
	rep := &m.Snapshot().Report
	if len(rep.Precopy) < 2 {
		t.Errorf("only %d pre-copy rounds recorded, want >= 2", len(rep.Precopy))
	}
	if rep.Downtime <= 0 {
		t.Error("no downtime recorded")
	}
	if want := rep.PauseTotal() + rep.Capture + rep.RestoreTotal() + rep.Resume; rep.Downtime != want {
		t.Errorf("downtime %v != pause+capture+restore+resume %v", rep.Downtime, want)
	}
	// The destination adopted the staged chunks and released the staging.
	if dst := coi.DaemonAt(r.plat, 2); len(dst.Staging().Paths()) != 0 {
		t.Errorf("staged chunks linger after adoption: %v", dst.Staging().Paths())
	}
	iters += 10
	if got := r.count(t, iters); got != refSum(iters) {
		t.Errorf("computation after live migration = %d, want %d", got, refSum(iters))
	}
	if _, err := m.Finish(); err == nil {
		t.Error("double Finish must fail")
	}
}

// TestLiveMigrateDowntimeBelowStopTheWorld runs the composed Migrate both
// ways on identical workloads: the live path's downtime must undercut the
// stop-the-world pause, and both must land the same bytes.
func TestLiveMigrateDowntimeBelowStopTheWorld(t *testing.T) {
	stwRig := newRig(t, "core_mig_stw", 2)
	stwRig.count(t, 20)
	_, stwSnap, err := Migrate(stwRig.cp, MigrateOptions{DeviceTo: 2, Path: "/snap/stw"})
	if err != nil {
		t.Fatal(err)
	}
	if len(stwSnap.Report.Precopy) != 0 {
		t.Errorf("stop-the-world migration ran %d pre-copy rounds", len(stwSnap.Report.Precopy))
	}

	liveRig := newRig(t, "core_mig_live", 2)
	liveRig.count(t, 20)
	_, liveSnap, err := Migrate(liveRig.cp, liveOpts("/snap/livecmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(liveSnap.Report.Precopy) == 0 {
		t.Fatal("live migration recorded no pre-copy rounds")
	}
	if liveSnap.Report.Downtime >= stwSnap.Report.Downtime {
		t.Errorf("live downtime %v not below stop-the-world %v", liveSnap.Report.Downtime, stwSnap.Report.Downtime)
	}
	// Byte-identical restores: both continuations compute the same sums.
	if a, b := stwRig.count(t, 40), liveRig.count(t, 40); a != b || a != refSum(40) {
		t.Errorf("continuations diverge: stw %d, live %d, want %d", a, b, refSum(40))
	}
}

// TestMigrateOptionValidation exercises the one-place option validation.
func TestMigrateOptionValidation(t *testing.T) {
	r := newRig(t, "core_mig_opts", 2)
	cases := []struct {
		name string
		opts MigrateOptions
	}{
		{"empty path", MigrateOptions{DeviceTo: 2}},
		{"host target", MigrateOptions{DeviceTo: 0, Path: "/snap/x"}},
		{"same device", MigrateOptions{DeviceTo: 1, Path: "/snap/x"}},
		{"negative rounds", MigrateOptions{DeviceTo: 2, Path: "/snap/x",
			Precopy: PrecopyOptions{MaxRounds: -1}}},
		{"precopy fields without rounds", MigrateOptions{DeviceTo: 2, Path: "/snap/x",
			Precopy: PrecopyOptions{DirtyFloorBytes: 1 << 20}}},
		{"negative capture streams", MigrateOptions{DeviceTo: 2, Path: "/snap/x",
			Capture: CaptureOptions{Streams: -1}}},
		{"restore parent", MigrateOptions{DeviceTo: 2, Path: "/snap/x",
			Restore: func() RestoreOptions {
				var o RestoreOptions
				o.Store.Enabled = true
				o.Store.Parent = "/snap/other"
				return o
			}()}},
	}
	for _, tc := range cases {
		if _, err := NewMigration(r.cp, tc.opts); err == nil {
			t.Errorf("%s: NewMigration accepted %+v", tc.name, tc.opts)
		}
	}

	// A stop-the-world session rejects Round but allows Finish.
	m, err := NewMigration(r.cp, MigrateOptions{DeviceTo: 2, Path: "/snap/stwsess"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Round(); err == nil {
		t.Error("Round on a stop-the-world session must fail")
	}
	if _, err := m.Finish(); err != nil {
		t.Fatal(err)
	}
}
