package snapifyio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"snapify/internal/simclock"
)

// Wire message types between Snapify-IO daemons.
const (
	msgOpen uint8 = iota + 1
	msgOpenResp
	msgChunkReady // write mode: staging buffer filled, please drain
	msgChunkAck   // write mode: drained and written, buffer reusable
	msgPull       // read mode: please fill my staging buffer
	msgChunkHere  // read mode: staging buffer filled (n=0 means EOF)
	msgClose
	msgCloseResp
	msgAbort
	msgMetricsDump // control: dump the service metrics registry (SIGUSR1 analogue)
	msgMetricsResp
	msgDetach  // write mode: stream departs but the striped assembly survives for a resume
	msgDiscard // control: drop a pending striped assembly and its partial file
	msgDiscardResp
	msgStoreNegotiate // control: have/need negotiation against the node's chunk store
	msgStoreNegotiateResp
	msgStoreDigests // control: fetch the digest plan (pending upload or manifest) for a snapshot path
	msgStoreDigestsResp
)

// errTruncated is reported when a message is shorter than its fields
// claim — either a protocol bug or an injected truncation fault.
var errTruncated = errors.New("snapifyio: truncated message")

// wire is a minimal append/consume codec for the daemon protocol.
type wire struct{ buf []byte }

func (w *wire) u8(v uint8)              { w.buf = append(w.buf, v) }
func (w *wire) i64(v int64)             { w.buf = binary.BigEndian.AppendUint64(w.buf, uint64(v)) }
func (w *wire) dur(d simclock.Duration) { w.i64(int64(d)) }
func (w *wire) str(s string) {
	w.i64(int64(len(s)))
	w.buf = append(w.buf, s...)
}

// unwire consumes a wire message. Every accessor bounds-checks: reading
// past the end (a truncated or corrupted message) latches the bad flag
// and yields zero values, and the caller checks err() once after
// decoding instead of trusting the peer's framing.
type unwire struct {
	buf []byte
	off int
	bad bool
}

func (u *unwire) u8() uint8 {
	if u.off+1 > len(u.buf) {
		u.bad = true
		return 0
	}
	v := u.buf[u.off]
	u.off++
	return v
}

func (u *unwire) i64() int64 {
	if u.off+8 > len(u.buf) {
		u.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(u.buf[u.off:])
	u.off += 8
	return int64(v)
}

func (u *unwire) dur() simclock.Duration { return simclock.Duration(u.i64()) }

func (u *unwire) str() string {
	n := int(u.i64())
	if n < 0 || u.off+n > len(u.buf) {
		u.bad = true
		return ""
	}
	s := string(u.buf[u.off : u.off+n])
	u.off += n
	return s
}

// err reports whether any accessor ran past the message end.
func (u *unwire) err() error {
	if u.bad {
		return errTruncated
	}
	return nil
}

// expect decodes a message and verifies its type.
func expect(raw []byte, want uint8) (*unwire, error) {
	u := &unwire{buf: raw}
	if got := u.u8(); u.bad || got != want {
		return nil, fmt.Errorf("snapifyio: protocol error: got message %d, want %d", got, want)
	}
	return u, nil
}
