package hostfs

import (
	"errors"
	"io"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/simclock"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(simclock.Default())
	content := blob.FromBytes([]byte("host-side snapshot"))
	if _, err := fs.WriteFile("/snapshots/app1/ctx", content); err != nil {
		t.Fatal(err)
	}
	got, d, err := fs.ReadFile("/snapshots/app1/ctx")
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("read cost must be positive")
	}
	if !blob.Equal(got, content) {
		t.Error("content mismatch")
	}
}

func TestColdReadSlower(t *testing.T) {
	fs := New(simclock.Default())
	content := blob.Zeros(256 * simclock.MiB)
	fs.WriteFile("f", content)
	_, warm, _ := fs.ReadFile("f")
	fs.EvictAll()
	_, cold, _ := fs.ReadFile("f")
	if cold <= warm {
		t.Errorf("cold read (%v) must be slower than cached read (%v)", cold, warm)
	}
}

func TestFlushSlowerThanWrite(t *testing.T) {
	fs := New(simclock.Default())
	content := blob.Zeros(512 * simclock.MiB)
	wd, _ := fs.WriteFile("f", content)
	fd, err := fs.FlushCost("f")
	if err != nil {
		t.Fatal(err)
	}
	if fd <= wd {
		t.Errorf("flush (%v) must be slower than page-cache write (%v)", fd, wd)
	}
}

func TestStreamingWriterAndReader(t *testing.T) {
	fs := New(simclock.Default())
	w, err := fs.Create("stream")
	if err != nil {
		t.Fatal(err)
	}
	a := blob.FromBytes([]byte("part one|"))
	b := blob.Synthetic(4, 5000)
	w.WriteBlob(a)
	w.WriteBlob(b)
	if fs.Exists("stream") {
		t.Error("file visible before Close")
	}
	w.Close()
	r, err := fs.Open("stream")
	if err != nil {
		t.Fatal(err)
	}
	var parts []blob.Blob
	for {
		c, _, err := r.Next(1024)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, c)
	}
	if !blob.Equal(blob.Concat(parts...), blob.Concat(a, b)) {
		t.Error("streamed content mismatch")
	}
	if r.Size() != a.Len()+b.Len() {
		t.Errorf("Size = %d", r.Size())
	}
}

func TestAbortDiscards(t *testing.T) {
	fs := New(simclock.Default())
	w, _ := fs.Create("f")
	w.WriteBlob(blob.Zeros(10))
	w.Abort()
	if fs.Exists("f") {
		t.Error("aborted file visible")
	}
	if _, err := w.WriteBlob(blob.Zeros(1)); err == nil {
		t.Error("write after Abort must fail")
	}
}

func TestListRemoveAll(t *testing.T) {
	fs := New(simclock.Default())
	fs.WriteFile("/snap/1/a", blob.Zeros(1))
	fs.WriteFile("/snap/1/b", blob.Zeros(1))
	fs.WriteFile("/snap/2/a", blob.Zeros(1))
	if got := fs.List("/snap/1/"); len(got) != 2 || got[0] != "/snap/1/a" {
		t.Fatalf("List = %v", got)
	}
	if n := fs.RemoveAll("/snap/1/"); n != 2 {
		t.Fatalf("RemoveAll = %d", n)
	}
	if !fs.Exists("/snap/2/a") {
		t.Error("unrelated file removed")
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs := New(simclock.Default())
	if _, _, err := fs.ReadFile("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("ReadFile: %v", err)
	}
	if err := fs.Remove("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove: %v", err)
	}
	if _, err := fs.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Open: %v", err)
	}
	if _, err := fs.FlushCost("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("FlushCost: %v", err)
	}
	if _, err := fs.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Size: %v", err)
	}
}
