#!/bin/sh
# bench.sh — the parallel capture benchmark (ISSUE 2 acceptance).
#
# Sweeps the multi-stream Snapify-IO capture of an 8 GiB-class device
# image over 1/2/4/8 streams, prints the table, enforces the shape
# (4 streams >= 2x over serial; all rows byte-identical), and records the
# raw numbers in BENCH_capture.json at the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "==> parallel capture sweep (8 GiB image, streams 1/2/4/8)"
go run ./cmd/snapbench -parallel -json BENCH_capture.json
