package blcr

import (
	"fmt"

	"snapify/internal/blob"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/stream"
)

// Incremental checkpointing is an extension beyond the paper: after a full
// checkpoint marks every region clean, a delta checkpoint serializes only
// the byte ranges written since (tracked by proc.Region). Restart applies
// a base context followed by its chain of deltas. The page-walk cost of a
// delta still covers the whole address space (dirty detection walks page
// tables), but the transport moves only the dirty bytes — which is where
// the paper's checkpoints spend their time, so deltas shrink checkpoint
// latency roughly by the workload's dirty fraction (see
// BenchmarkAblation_IncrementalCheckpoint).

// Delta record tags extend the context-file format.
const (
	tagDeltaHeader uint16 = 0xB1D0 + iota
	tagDeltaRegion
	tagDeltaRange
	tagDeltaTrailer
)

// CheckpointFull is Checkpoint plus a clean mark on every region, making
// the snapshot a valid base for subsequent CheckpointDelta calls.
func (c *Checkpointer) CheckpointFull(p *proc.Process, sink stream.Sink) (*Stats, error) {
	p.PauseSteps()
	defer p.ResumeSteps()
	st, err := c.CheckpointFrozen(p, sink)
	if err != nil {
		return nil, err
	}
	for _, r := range p.Regions() {
		r.MarkClean()
	}
	return st, nil
}

// CheckpointDelta freezes p and serializes only the ranges written since
// the last CheckpointFull or CheckpointDelta. Local-store regions are
// included (their deltas are cheap); region creation or removal since the
// base is not supported and returns an error.
func (c *Checkpointer) CheckpointDelta(p *proc.Process, sink stream.Sink) (*Stats, error) {
	p.PauseSteps()
	defer p.ResumeSteps()
	st, err := c.CheckpointDeltaFrozen(p, sink)
	if err != nil {
		return nil, err
	}
	st.Duration += simclock.Duration(p.ThreadCount()) * c.model.ThreadQuiesce
	return st, nil
}

// CheckpointDeltaFrozen serializes the dirty ranges of an already-quiesced
// process (the Snapify capture path after a pause has drained everything).
func (c *Checkpointer) CheckpointDeltaFrozen(p *proc.Process, sink stream.Sink) (*Stats, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("blcr: cannot checkpoint %s process %s", p.State(), p.Name())
	}
	acc := simclock.NewPipelineAccum()
	onHost := p.Node().IsHost()
	st := &Stats{}
	enc := &recEncoder{}
	emit := func(b blob.Blob, meta bool, walk int64) error {
		cost, err := sink.WriteBlob(b)
		if err != nil {
			return err
		}
		stream.Observe(acc, cost, c.walkStage(onHost, walk))
		st.Bytes += b.Len()
		if meta {
			st.MetaWrites++
		}
		return nil
	}

	regions := p.Regions()
	if err := emit(enc.record(tagDeltaHeader, func(e *recEncoder) {
		e.str(magic)
		e.u64(formatVersion)
		e.u64(uint64(len(regions)))
	}), true, metaRecordSize); err != nil {
		sink.Abort()
		return nil, err
	}
	for _, r := range regions {
		ranges := r.DirtyRanges()
		if err := emit(enc.record(tagDeltaRegion, func(e *recEncoder) {
			e.str(r.Name())
			e.u64(uint64(len(ranges)))
		}), true, metaRecordSize); err != nil {
			sink.Abort()
			return nil, err
		}
		for _, rg := range ranges {
			if err := emit(enc.record(tagDeltaRange, func(e *recEncoder) {
				e.u64(uint64(rg.Off))
				e.u64(uint64(rg.Len))
			}), true, metaRecordSize); err != nil {
				sink.Abort()
				return nil, err
			}
			content := r.SnapshotRange(rg.Off, rg.Len)
			if err := content.ForEachChunk(PageChunk, func(chunk blob.Blob) error {
				return emit(chunk, false, chunk.Len())
			}); err != nil {
				sink.Abort()
				return nil, err
			}
		}
		// Dirty detection walks the region's page tables even where
		// nothing changed.
		acc.Add(c.walkStage(onHost, r.Size()) / 8)
		r.MarkClean()
		st.Regions++
	}
	if err := emit(enc.record(tagDeltaTrailer, func(e *recEncoder) {
		e.u64(uint64(len(regions)))
	}), true, metaRecordSize); err != nil {
		sink.Abort()
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	st.Duration = acc.Total()
	if c.sp != nil {
		c.emitStreamSpans(p, "capture_stream", c.sp.start, []simclock.Duration{st.Duration}, []int64{st.Bytes})
	}
	return st, nil
}

// ApplyDelta replays a delta context onto an already-restored process.
func (c *Checkpointer) ApplyDelta(p *proc.Process, source stream.Source) (*Stats, error) {
	acc := simclock.NewPipelineAccum()
	r := &contextReader{c: c, src: source, acc: acc, onHost: p.Node().IsHost()}
	st := &Stats{}

	dec, err := r.readRecord()
	if err != nil {
		return nil, err
	}
	if tag := dec.u16(); tag != tagDeltaHeader {
		return nil, badContext("expected delta header, got tag %#x", tag)
	}
	if m := dec.str(); m != magic {
		return nil, badContext("bad magic %q", m)
	}
	if v := dec.u64(); v != formatVersion {
		return nil, badContext("unsupported version %d", v)
	}
	nRegions := int(dec.u64())
	st.MetaWrites++

	for i := 0; i < nRegions; i++ {
		dec, err = r.readRecord()
		if err != nil {
			return nil, err
		}
		if tag := dec.u16(); tag != tagDeltaRegion {
			return nil, badContext("expected delta region, got tag %#x", tag)
		}
		name := dec.str()
		nRanges := int(dec.u64())
		st.MetaWrites++
		reg := p.Region(name)
		if reg == nil {
			return nil, badContext("delta names unknown region %q", name)
		}
		for j := 0; j < nRanges; j++ {
			dec, err = r.readRecord()
			if err != nil {
				return nil, err
			}
			if tag := dec.u16(); tag != tagDeltaRange {
				return nil, badContext("expected delta range, got tag %#x", tag)
			}
			off := int64(dec.u64())
			n := int64(dec.u64())
			st.MetaWrites++
			if off < 0 || n < 0 || off+n > reg.Size() {
				return nil, badContext("delta range [%d,%d) outside region %q", off, off+n, name)
			}
			for done := int64(0); done < n; {
				m := n - done
				if m > PageChunk {
					m = PageChunk
				}
				content, err := r.readContent(m)
				if err != nil {
					return nil, err
				}
				reg.WriteBlob(off+done, content)
				done += m
			}
			st.Bytes += n
		}
		st.Regions++
	}
	dec, err = r.readRecord()
	if err != nil {
		return nil, err
	}
	if tag := dec.u16(); tag != tagDeltaTrailer {
		return nil, badContext("expected delta trailer, got tag %#x", tag)
	}
	st.Duration = acc.Total()
	return st, nil
}

// RestartChain restores a process from a full base context and an ordered
// chain of delta contexts.
func (c *Checkpointer) RestartChain(base stream.Source, deltas []stream.Source, spawn Spawner) (*proc.Process, *Stats, error) {
	p, st, err := c.Restart(base, spawn)
	if err != nil {
		return nil, nil, err
	}
	for i, d := range deltas {
		ds, err := c.ApplyDelta(p, d)
		if err != nil {
			p.Terminate()
			return nil, nil, fmt.Errorf("blcr: applying delta %d: %w", i, err)
		}
		st.Bytes += ds.Bytes
		st.Duration += ds.Duration
	}
	return p, st, nil
}
