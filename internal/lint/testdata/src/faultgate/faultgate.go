// Package faultgate is a golden fixture for the faultgate analyzer: it
// imports internal/faultinject from a package that is not one of the
// fabric choke points.
package faultgate

import (
	"snapify/internal/faultinject" // want "is not a fault-injection choke point"
)

// Using the import keeps the fixture type-checking cleanly.
var _ = faultinject.Drop
