package core

import (
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/simnet"
)

// The three API use scenarios of Section 5, composed from the five
// primitives exactly as the paper's sample code does (Fig 6 and Fig 7).

// Swapout captures and terminates the offload process, freeing the card
// for another tenant (snapify_swapout, Fig 6a). The returned Snapshot
// represents the swapped-out process and is the input to Swapin.
func Swapout(path string, cp *coi.Process) (*Snapshot, error) {
	return SwapoutOpts(path, cp, CaptureOptions{})
}

// SwapoutOpts is Swapout with explicit capture options (parallel streams,
// retry, the dedup store). Terminate is forced on — a swap-out that left
// the process running would defeat its purpose.
func SwapoutOpts(path string, cp *coi.Process, opts CaptureOptions) (*Snapshot, error) {
	s := NewSnapshot(path, cp)
	if err := s.Pause(); err != nil {
		return nil, err
	}
	opts.Terminate = true
	if err := s.Capture(opts); err != nil {
		return nil, err
	}
	if err := s.Wait(); err != nil {
		return nil, err
	}
	return s, nil
}

// Swapin restores a swapped-out offload process on the given device and
// resumes it (snapify_swapin, Fig 6a). It returns the revived handle.
func Swapin(s *Snapshot, deviceTo simnet.NodeID) (*coi.Process, error) {
	return SwapinOpts(s, deviceTo, RestoreOptions{})
}

// SwapinOpts is Swapin with explicit restore options (parallel range
// streams, retry, the store-manifest pre-check).
func SwapinOpts(s *Snapshot, deviceTo simnet.NodeID, opts RestoreOptions) (*coi.Process, error) {
	cp, err := s.Restore(deviceTo, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Resume(); err != nil {
		return nil, err
	}
	return cp, nil
}

// Migrate moves the offload process to another coprocessor on the same
// machine (snapify_migration, Fig 7): a swap-out whose local store streams
// directly to the destination card, followed by a swap-in there.
func Migrate(cp *coi.Process, deviceTo simnet.NodeID, path string) (*coi.Process, *Snapshot, error) {
	return MigrateOpts(cp, deviceTo, path, CaptureOptions{}, RestoreOptions{})
}

// MigrateOpts is Migrate with explicit capture and restore options; a
// store-enabled migration moves the context through the dedup store while
// the local store still streams device-to-device.
func MigrateOpts(cp *coi.Process, deviceTo simnet.NodeID, path string, copts CaptureOptions, ropts RestoreOptions) (*coi.Process, *Snapshot, error) {
	if deviceTo == cp.DeviceNode() {
		return nil, nil, fmt.Errorf("core: migration target %v is the current device", deviceTo)
	}
	s := NewSnapshot(path, cp)
	// The local store moves device-to-device over PCIe, not through the
	// host (Section 7, "Process migration").
	s.LocalStoreTarget = deviceTo
	if err := s.Pause(); err != nil {
		return nil, nil, err
	}
	copts.Terminate = true
	if err := s.Capture(copts); err != nil {
		return nil, nil, err
	}
	if err := s.Wait(); err != nil {
		return nil, nil, err
	}
	ncp, err := SwapinOpts(s, deviceTo, ropts)
	if err != nil {
		return nil, nil, err
	}
	return ncp, s, nil
}
