// MPI checkpoint: the paper's distributed scenario (Section 7) — a NAS
// multi-zone benchmark runs across a cluster of Xeon Phi nodes, one MPI
// rank per node, and the BLCR-integrated runtime takes a coordinated
// checkpoint of every rank (host process + offload process each). The job
// is then killed and restarted from the snapshot; it resumes at the
// checkpointed iteration.
package main

import (
	"fmt"
	"os"

	"snapify/internal/mpi"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/workloads"
)

const ranks = 2

func main() {
	cluster, err := mpi.NewCluster(ranks, platform.Config{Server: phi.ServerConfig{
		Devices: 1,
		Device:  phi.DeviceConfig{MemBytes: 8 * simclock.GiB},
	}})
	check(err)
	defer cluster.Stop()

	w, err := mpi.NewWorld(cluster, ranks)
	check(err)

	spec, _ := workloads.MZByCode("BT-MZ")
	spec.Iterations = 10

	fmt.Printf("BT-MZ (class C) on %d ranks, one Xeon Phi node each\n", ranks)
	err = w.Run(func(r *mpi.Rank) error {
		in, err := workloads.LaunchMZRank(r, spec, ranks)
		if err != nil {
			return err
		}
		return workloads.RunMZIterations(r, in, 4)
	})
	check(err)
	fmt.Println("ran 4 of 10 iterations; all MPI channels drained at the barrier")

	rep, err := w.Checkpoint("/mpi/btmz")
	check(err)
	fmt.Printf("coordinated checkpoint: %.1fs virtual (slowest rank)\n", rep.Total.Seconds())
	for i, b := range rep.PerRankBytes {
		fmt.Printf("  rank %d snapshot: %.0fMiB (host + device + local store)\n",
			i, float64(b)/float64(simclock.MiB))
	}

	fmt.Println("\n*** node failure: the whole job dies ***")
	w.Close()

	w2, rrep, err := cluster.Restart("/mpi/btmz", ranks)
	check(err)
	defer w2.Close()
	fmt.Printf("restarted from the snapshot in %.1fs virtual\n", rrep.Total.Seconds())

	err = w2.Run(func(r *mpi.Rank) error {
		in, err := workloads.AttachMZRank(r, spec, ranks)
		if err != nil {
			return err
		}
		fmt.Printf("  rank %d resumes at iteration %d\n", r.ID, in.Progress())
		return workloads.RunMZIterations(r, in, spec.Iterations-in.Progress())
	})
	check(err)
	fmt.Println("job completed all 10 iterations across the failure")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpi_checkpoint:", err)
		os.Exit(1)
	}
}
