package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// An AllowEntry acknowledges one class of finding as intentional. Every
// entry must say why — entries without a justification fail to parse, so
// the allowlist cannot silently accumulate unexplained exceptions.
type AllowEntry struct {
	// Analyzer the entry applies to, or "all".
	Analyzer string
	// PathSuffix matches findings whose file path ends with it (slash
	// separated, so "internal/proc/proc.go" matches regardless of where
	// the module is checked out).
	PathSuffix string
	// Match is a substring the finding's message must contain; "*"
	// matches any message.
	Match string
	// Justification is the recorded reason the finding is acceptable.
	Justification string

	used bool
}

// An Allowlist filters findings against acknowledged exceptions.
type Allowlist struct {
	// Source is the file the entries came from, for diagnostics.
	Source  string
	Entries []*AllowEntry
}

// ParseAllowlist reads an allowlist file. The format is line-oriented:
//
//	# comment
//	<analyzer> <path-suffix> <message-substring|*> -- <justification>
//
// Blank lines and # comments are ignored. A missing " -- justification"
// is an error.
func ParseAllowlist(path string) (*Allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	al := &Allowlist{Source: path}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, justification, found := strings.Cut(line, " -- ")
		justification = strings.TrimSpace(justification)
		if !found || justification == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry has no justification (expected `analyzer path match -- why`)", path, i+1)
		}
		fields := strings.Fields(rule)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed allowlist entry %q (expected `analyzer path match -- why`)", path, i+1, line)
		}
		al.Entries = append(al.Entries, &AllowEntry{
			Analyzer:      fields[0],
			PathSuffix:    fields[1],
			Match:         fields[2],
			Justification: justification,
		})
	}
	return al, nil
}

// Filter returns the findings not covered by the allowlist.
func (al *Allowlist) Filter(findings []Finding) []Finding {
	if al == nil {
		return findings
	}
	var out []Finding
	for _, f := range findings {
		if !al.covers(f) {
			out = append(out, f)
		}
	}
	return out
}

func (al *Allowlist) covers(f Finding) bool {
	file := filepath.ToSlash(f.File)
	for _, e := range al.Entries {
		if e.Analyzer != "all" && e.Analyzer != f.Analyzer {
			continue
		}
		if !strings.HasSuffix(file, e.PathSuffix) {
			continue
		}
		if e.Match != "*" && !strings.Contains(f.Message, e.Match) {
			continue
		}
		e.used = true
		return true
	}
	return false
}

// Unused returns entries that covered nothing in the last Filter calls —
// stale acknowledgements that should be deleted.
func (al *Allowlist) Unused() []*AllowEntry {
	if al == nil {
		return nil
	}
	var out []*AllowEntry
	for _, e := range al.Entries {
		if !e.used {
			out = append(out, e)
		}
	}
	return out
}
