// Package rawprint is a golden fixture for the rawprint analyzer.
package rawprint

import (
	"fmt"
	"os"
)

func bad() {
	fmt.Print("x")        // want "raw fmt.Print in an internal package bypasses the observability layer"
	fmt.Printf("%d\n", 1) // want "raw fmt.Printf in an internal package bypasses the observability layer"
	fmt.Println("done")   // want "raw fmt.Println in an internal package bypasses the observability layer"
}

func good() (string, error) {
	// Building strings and writing to explicit destinations is fine — the
	// analyzer only bans the stdout shorthands.
	s := fmt.Sprintf("%d bytes", 42)
	if _, err := fmt.Fprintln(os.Stderr, s); err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return s, nil
}

func suppressed() {
	fmt.Println("progress") //nolint:rawprint // golden fixture: a justified directive suppresses the finding
}
