package sched

import (
	"testing"
	"time"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/platform/platformtest"
	"snapify/internal/simclock"
	"snapify/internal/workloads"
)

// smallSpec is a compact job used to force memory pressure on a small card.
func smallSpec(code string, calls int) workloads.Spec {
	return workloads.Spec{
		Code: code, Name: code,
		HostMem:   8 * simclock.MiB,
		DeviceMem: 256 * simclock.MiB,
		// Local store + device memory + runtime ~ 600 MiB per job.
		LocalStore:     256 * simclock.MiB,
		Calls:          calls,
		StepsPerCall:   2,
		ComputePerCall: time.Millisecond,
		InPerCall:      16 * simclock.KiB,
		OutPerCall:     16 * simclock.KiB,
	}
}

func newSched(t *testing.T, devices int, cardMem int64) *Scheduler {
	t.Helper()
	return New(platformtest.Start(t, platformtest.Options{Devices: devices, CardMem: cardMem}))
}

func TestMultiTenancyViaSwapping(t *testing.T) {
	// A 1.5 GiB card cannot hold two ~600 MiB jobs plus the OS reserve at
	// once: the scheduler must swap to run both.
	s := newSched(t, 1, 1536*simclock.MiB)
	j1, err := s.Submit(smallSpec("J1", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallSpec("J2", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if j1.State != SwappedOut {
		t.Fatalf("submitting job 2 should have swapped job 1 out (state %v)", j1.State)
	}
	if j2.State != Resident {
		t.Fatalf("job 2 state %v", j2.State)
	}

	swaps, err := s.RunRoundRobin(2)
	if err != nil {
		t.Fatal(err)
	}
	if swaps < 2 {
		t.Errorf("round robin finished with only %d swaps; no real sharing happened", swaps)
	}
	for _, j := range s.Jobs() {
		if j.State != Done {
			t.Errorf("job %d not done: %v", j.ID, j.State)
		}
	}
}

func TestNoSwappingWhenCardFitsBoth(t *testing.T) {
	s := newSched(t, 1, 8*simclock.GiB)
	s.Submit(smallSpec("A", 4), 1) //nolint:errcheck
	s.Submit(smallSpec("B", 4), 1) //nolint:errcheck
	swaps, err := s.RunRoundRobin(2)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 0 {
		t.Errorf("%d swaps on a card that fits both jobs", swaps)
	}
}

func TestSubmitFailsWhenNothingToEvict(t *testing.T) {
	s := newSched(t, 1, 1024*simclock.MiB)
	spec := smallSpec("HUGE", 2)
	spec.LocalStore = 4 * simclock.GiB
	if _, err := s.Submit(spec, 1); err == nil {
		t.Fatal("oversized job must be rejected")
	}
}

func TestEvacuateMigratesJobs(t *testing.T) {
	s := newSched(t, 2, 8*simclock.GiB)
	j1, err := s.Submit(smallSpec("E1", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallSpec("E2", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j1.Inst.RunCalls(2) //nolint:errcheck
	j2.Inst.RunCalls(2) //nolint:errcheck

	// Fault prediction flags card 1: evacuate everything to card 2.
	if err := s.Evacuate(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		if j.Device != 2 {
			t.Errorf("job %d still on %v", j.ID, j.Device)
		}
	}
	// Both jobs finish correctly on the new card.
	if _, err := s.RunRoundRobin(3); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		if j.State != Done {
			t.Errorf("job %d not done after evacuation", j.ID)
		}
	}
	if err := s.Evacuate(1, 1); err == nil {
		t.Error("evacuating onto the failing card must fail")
	}
}

// newStoreSched is newSched with every capture and restore routed
// through the host's dedup store.
func newStoreSched(t *testing.T, devices int, cardMem int64) *Scheduler {
	t.Helper()
	s := newSched(t, devices, cardMem)
	s.Capture.Streams = 2
	s.Capture.ChunkBytes = 256 * 1024
	s.Capture.Store.Enabled = true
	s.Restore.Store.Enabled = true
	return s
}

// dropAllAndExpectEmptyStore drops every job's snapshot artifacts and
// checks the GC invariant of ISSUE 5: after all snapshots are gone, the
// store holds zero manifests and zero chunks.
func dropAllAndExpectEmptyStore(t *testing.T, s *Scheduler) {
	t.Helper()
	for _, j := range s.Jobs() {
		s.Drop(j)
	}
	if _, _, err := s.plat.Store.GC(0); err != nil {
		t.Fatal(err)
	}
	if st := s.plat.Store.Stats(); st.Manifests != 0 || st.Chunks != 0 {
		t.Errorf("store not empty after dropping all jobs: %+v", st)
	}
	if problems, _ := s.plat.Store.Verify(); len(problems) != 0 {
		t.Errorf("store inconsistent after drop + gc: %v", problems)
	}
}

// TestSwapCyclesThroughStore is TestMultiTenancyViaSwapping on the dedup
// data path: every swap-out negotiates against the store, every swap-in
// reads the committed manifest through the overlay, and dropping the
// finished jobs GCs the store back to zero.
func TestSwapCyclesThroughStore(t *testing.T) {
	s := newStoreSched(t, 1, 1536*simclock.MiB)
	j1, err := s.Submit(smallSpec("S1", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(smallSpec("S2", 6), 1); err != nil {
		t.Fatal(err)
	}
	if j1.State != SwappedOut {
		t.Fatalf("submitting job 2 should have swapped job 1 out (state %v)", j1.State)
	}
	// The swapped-out context lives only in the store.
	ctx1 := "/sched/job1/" + coi.ContextFileName
	if !s.plat.Store.Has(ctx1) {
		t.Fatal("swap-out committed no store manifest")
	}
	if s.plat.Host().FS.Exists(ctx1) {
		t.Error("store-mode swap-out left a plain context file")
	}

	swaps, err := s.RunRoundRobin(2)
	if err != nil {
		t.Fatal(err)
	}
	if swaps < 2 {
		t.Errorf("round robin finished with only %d swaps; no real sharing happened", swaps)
	}
	for _, j := range s.Jobs() {
		if j.State != Done {
			t.Errorf("job %d not done: %v", j.ID, j.State)
		}
	}
	// Repeated swap-outs of the same job hit the store: most chunks of a
	// mostly-unchanged image are already resident.
	if st := s.plat.Store.Stats(); st.Manifests < 2 {
		t.Errorf("expected both jobs' manifests resident, have %+v", st)
	}
	dropAllAndExpectEmptyStore(t, s)
}

// TestEvacuateThroughStore migrates every job off a flagged card with
// the context routed through the dedup store.
func TestEvacuateThroughStore(t *testing.T) {
	s := newStoreSched(t, 2, 8*simclock.GiB)
	j1, err := s.Submit(smallSpec("V1", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallSpec("V2", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j1.Inst.RunCalls(2) //nolint:errcheck
	j2.Inst.RunCalls(2) //nolint:errcheck

	if err := s.Evacuate(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		if j.Device != 2 {
			t.Errorf("job %d still on %v", j.ID, j.Device)
		}
	}
	// The migration's context manifest is store-resident.
	if !s.plat.Store.Has("/sched/evac1/" + coi.ContextFileName) {
		t.Error("migration committed no store manifest")
	}
	if _, err := s.RunRoundRobin(3); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		if j.State != Done {
			t.Errorf("job %d not done after evacuation", j.ID)
		}
	}
	dropAllAndExpectEmptyStore(t, s)
}

// TestDeltaChainRestoreParentOnlyInStore checkpoints a running job as a
// store-resident base + delta chain — neither file ever exists outside
// the store — and restores the chain through the overlay.
func TestDeltaChainRestoreParentOnlyInStore(t *testing.T) {
	s := newSched(t, 1, 8*simclock.GiB)
	spec := smallSpec("DC", 4)
	spec.DeviceMem = 64 * simclock.MiB
	spec.LocalStore = 16 * simclock.MiB
	in, err := workloads.Launch(s.plat, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunCalls(1); err != nil {
		t.Fatal(err)
	}

	var copts core.CaptureOptions
	copts.Streams = 2
	copts.ChunkBytes = 256 * 1024
	copts.Store.Enabled = true
	baseCtx := "/sched/dcbase/" + coi.ContextFileName

	base := core.NewSnapshot("/sched/dcbase", in.CP)
	if err := core.Pause(base); err != nil {
		t.Fatal(err)
	}
	if err := base.CaptureBase(copts); err != nil {
		t.Fatal(err)
	}
	if err := core.Wait(base); err != nil {
		t.Fatal(err)
	}
	if err := core.Resume(base); err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunCalls(1); err != nil {
		t.Fatal(err)
	}

	dopts := copts
	dopts.Terminate = true
	dopts.Store.Parent = baseCtx
	d := core.NewSnapshot("/sched/dcdelta", in.CP)
	if err := core.Pause(d); err != nil {
		t.Fatal(err)
	}
	if err := d.CaptureDelta(dopts); err != nil {
		t.Fatal(err)
	}
	if err := core.Wait(d); err != nil {
		t.Fatal(err)
	}

	deltaPath := "/sched/dcdelta/" + coi.DeltaFileName
	if s.plat.Host().FS.Exists(baseCtx) || s.plat.Host().FS.Exists(deltaPath) {
		t.Fatal("chain files exist outside the store")
	}
	bm, _, err := s.plat.Store.Manifest(baseCtx)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Refs != 2 {
		t.Errorf("base refs %d, want 2 (holder + delta child)", bm.Refs)
	}

	var ropts core.RestoreOptions
	ropts.Store.Enabled = true
	if _, err := d.RestoreChain("/sched/dcbase", []string{"/sched/dcdelta"}, 1, ropts); err != nil {
		t.Fatalf("restore chain from store: %v", err)
	}
	if err := d.Resume(); err != nil {
		t.Fatal(err)
	}
	// The job runs to completion from the restored chain.
	if _, err := in.Run(); err != nil {
		t.Fatalf("run to completion after chain restore: %v", err)
	}
	in.Close()

	// Releasing the chain cascades the store back to empty.
	if _, err := s.plat.Store.Release(deltaPath); err != nil {
		t.Fatal(err)
	}
	if _, err := s.plat.Store.Release(baseCtx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.plat.Store.GC(0); err != nil {
		t.Fatal(err)
	}
	if st := s.plat.Store.Stats(); st.Manifests != 0 || st.Chunks != 0 {
		t.Errorf("store not empty after chain release + gc: %+v", st)
	}
}
