package blob

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnapshotRangeMatchesBytes(t *testing.T) {
	buf := NewBuffer(1000, 33)
	buf.WriteAt([]byte("alpha"), 100)
	buf.WriteAt([]byte("beta"), 500)
	whole := buf.Snapshot().Bytes()
	for _, c := range []struct{ off, n int64 }{
		{0, 0}, {0, 1000}, {90, 30}, {100, 5}, {102, 500}, {999, 1},
	} {
		got := buf.SnapshotRange(c.off, c.n).Bytes()
		if !bytes.Equal(got, whole[c.off:c.off+c.n]) {
			t.Errorf("SnapshotRange(%d,%d) mismatch", c.off, c.n)
		}
	}
}

func TestWriteBlobMatchingBackgroundIsFree(t *testing.T) {
	src := NewBuffer(1<<20, 7)
	src.WriteAt([]byte("dirty"), 4096)
	snap := src.Snapshot()

	dst := NewBuffer(1<<20, 7)
	dst.Fill(0xFF, 0, 1<<20) // fully dirty before the transfer
	dst.WriteBlob(0, snap)
	if dst.DirtyBytes() != 5 {
		t.Errorf("DirtyBytes = %d after background-matching WriteBlob, want 5", dst.DirtyBytes())
	}
	if !Equal(dst.Snapshot(), snap) {
		t.Error("content mismatch after WriteBlob")
	}
}

func TestWriteBlobForeignBackground(t *testing.T) {
	src := NewBuffer(4096, 7)
	src.WriteAt([]byte("x"), 0)
	dst := NewBuffer(8192, 9)
	dst.WriteBlob(2048, src.Snapshot())
	want := src.Snapshot().Bytes()
	got := make([]byte, 4096)
	dst.ReadAt(got, 2048)
	if !bytes.Equal(got, want) {
		t.Error("foreign-background WriteBlob content mismatch")
	}
	// Outside the written window the destination background is intact.
	head := make([]byte, 2048)
	dst.ReadAt(head, 0)
	wantHead := make([]byte, 2048)
	Materialize(9, 0, wantHead)
	if !bytes.Equal(head, wantHead) {
		t.Error("WriteBlob disturbed content outside its range")
	}
}

func TestClearOverlaySplitsSpans(t *testing.T) {
	buf := NewBuffer(100, 5)
	buf.Fill(1, 10, 50) // overlay [10,60)
	// Write background-matching blob over [20,40): clears that window.
	bg := Synthetic(5, 100).Slice(20, 20)
	buf.WriteBlob(20, bg)
	want := make([]byte, 100)
	Materialize(5, 0, want)
	for i := 10; i < 20; i++ {
		want[i] = 1
	}
	for i := 40; i < 60; i++ {
		want[i] = 1
	}
	got := buf.Snapshot().Bytes()
	if !bytes.Equal(got, want) {
		t.Error("clearOverlay content mismatch")
	}
}

// TestRDMAQuick models RDMA transfers between buffers against flat byte
// slices: WriteBlob(SnapshotRange(...)) must behave exactly like copy().
func TestRDMAQuick(t *testing.T) {
	const size = 2048
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		seedA, seedB := uint64(r.Int63()), uint64(r.Int63())
		a, b := NewBuffer(size, seedA), NewBuffer(size, seedB)
		refA, refB := make([]byte, size), make([]byte, size)
		Materialize(seedA, 0, refA)
		Materialize(seedB, 0, refB)
		for op := 0; op < 30; op++ {
			off := r.Int63n(size)
			n := r.Int63n(size - off)
			dstOff := r.Int63n(size - n + 1)
			switch r.Intn(3) {
			case 0: // app write to a
				p := make([]byte, n)
				r.Read(p)
				a.WriteAt(p, off)
				copy(refA[off:], p)
			case 1: // rdma a[off..] -> b[dstOff..]
				b.WriteBlob(dstOff, a.SnapshotRange(off, n))
				copy(refB[dstOff:dstOff+n], refA[off:off+n])
			case 2: // rdma b[off..] -> a[dstOff..]
				a.WriteBlob(dstOff, b.SnapshotRange(off, n))
				copy(refA[dstOff:dstOff+n], refB[off:off+n])
			}
		}
		return bytes.Equal(a.Snapshot().Bytes(), refA) && bytes.Equal(b.Snapshot().Bytes(), refB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
