package blcr

import (
	"fmt"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/stream"
)

func TestIncrementalCheckpointChain(t *testing.T) {
	e := newEnv()
	p := proc.New("incr", 1, 1, nil)
	heap, _ := p.AddRegion("heap", proc.RegionHeap, 64*simclock.MiB, 9)
	data, _ := p.AddRegion("data", proc.RegionData, 1*simclock.MiB, 3)

	heap.WriteAt([]byte("generation 0"), 0)
	full, err := e.cr.CheckpointFull(p, e.sink(t, "base"))
	if err != nil {
		t.Fatal(err)
	}

	// Two generations of small mutations, one delta each.
	heap.WriteAt([]byte("generation 1"), 1000)
	data.WriteAt([]byte("d1"), 0)
	d1, err := e.cr.CheckpointDelta(p, e.sink(t, "delta1"))
	if err != nil {
		t.Fatal(err)
	}
	heap.WriteAt([]byte("generation 2"), 2000)
	heap.WriteAt([]byte("overwrite!"), 1000) // overlaps generation 1
	d2, err := e.cr.CheckpointDelta(p, e.sink(t, "delta2"))
	if err != nil {
		t.Fatal(err)
	}

	// Deltas are far smaller and faster than the full checkpoint.
	if d1.Bytes >= full.Bytes/8 || d2.Bytes >= full.Bytes/8 {
		t.Errorf("delta sizes %d/%d not small vs full %d", d1.Bytes, d2.Bytes, full.Bytes)
	}
	if d1.Duration >= full.Duration {
		t.Errorf("delta time %v not below full %v", d1.Duration, full.Duration)
	}

	want := map[string]blob.Blob{
		"heap": heap.Snapshot(),
		"data": data.Snapshot(),
	}

	// Restore the chain into a fresh process.
	restored, st, err := e.cr.RestartChain(
		e.source(t, "base"),
		[]stream.Source{e.source(t, "delta1"), e.source(t, "delta2")},
		func(img *Image) (*proc.Process, error) {
			return proc.New(img.Name, 2, 2, nil), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Duration <= 0 {
		t.Error("chain restore has no duration")
	}
	for name, b := range want {
		if !blob.Equal(restored.Region(name).Snapshot(), b) {
			t.Errorf("region %q differs after chain restore", name)
		}
	}
	restored.ResumeSteps()
}

func TestDeltaWithNoChangesIsTiny(t *testing.T) {
	e := newEnv()
	p := proc.New("quiet", 1, 1, nil)
	p.AddRegion("heap", proc.RegionHeap, 256*simclock.MiB, 1)
	if _, err := e.cr.CheckpointFull(p, e.sink(t, "base")); err != nil {
		t.Fatal(err)
	}
	st, err := e.cr.CheckpointDelta(p, e.sink(t, "empty_delta"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes > 4096 {
		t.Errorf("no-change delta is %d bytes", st.Bytes)
	}
}

func TestApplyDeltaRejectsUnknownRegion(t *testing.T) {
	e := newEnv()
	p := proc.New("a", 1, 1, nil)
	p.AddRegion("heap", proc.RegionHeap, 1024, 0)
	p.Region("heap").WriteAt([]byte("x"), 0)
	e.cr.CheckpointFull(p, e.sink(t, "base")) //nolint:errcheck
	p.Region("heap").WriteAt([]byte("y"), 0)
	if _, err := e.cr.CheckpointDelta(p, e.sink(t, "delta")); err != nil {
		t.Fatal(err)
	}

	// A process without that region cannot take the delta.
	q := proc.New("b", 2, 1, nil)
	q.AddRegion("other", proc.RegionHeap, 1024, 0)
	if _, err := e.cr.ApplyDelta(q, e.source(t, "delta")); err == nil {
		t.Fatal("delta against mismatched process must fail")
	}
}

func TestApplyDeltaRejectsFullContext(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "p", 1)
	if _, err := e.cr.Checkpoint(p, e.sink(t, "full_ctx")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cr.ApplyDelta(p, e.source(t, "full_ctx")); err == nil {
		t.Fatal("a full context is not a delta")
	}
}

func TestDirtyTrackingSurvivesManyPatterns(t *testing.T) {
	// Randomized writes: the delta chain must always reconstruct the
	// current state exactly.
	e := newEnv()
	p := proc.New("fuzzy", 1, 1, nil)
	heap, _ := p.AddRegion("heap", proc.RegionHeap, 1<<20, 5)
	if _, err := e.cr.CheckpointFull(p, e.sink(t, "f_base")); err != nil {
		t.Fatal(err)
	}
	var deltas []stream.Source
	seed := int64(12345)
	for gen := 0; gen < 5; gen++ {
		for w := 0; w < 20; w++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			off := (seed >> 16) & (1<<20 - 256)
			if off < 0 {
				off = -off
			}
			n := (seed>>40)&255 + 1
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(seed >> (uint(i) % 56))
			}
			heap.WriteAt(buf, off)
		}
		name := fmt.Sprintf("f_delta%d", gen)
		if _, err := e.cr.CheckpointDelta(p, e.sink(t, name)); err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, e.source(t, name))
	}
	want := heap.Snapshot()
	restored, _, err := e.cr.RestartChain(e.source(t, "f_base"), deltas,
		func(img *Image) (*proc.Process, error) { return proc.New(img.Name, 9, 2, nil), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(restored.Region("heap").Snapshot(), want) {
		t.Fatal("chain restore differs from live state")
	}
}
