package scif

import (
	"sync"

	"snapify/internal/faultinject"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// Endpoint is one end of a SCIF connection.
type Endpoint struct {
	net    *Network
	local  Addr
	remote Addr
	peer   *Endpoint

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte // received-but-not-consumed messages, in order
	qbytes int64
	closed bool

	windows map[int64]*Window // registered windows keyed by RDMA offset
}

func newEndpoint(n *Network, local, remote Addr) *Endpoint {
	ep := &Endpoint{
		net:     n,
		local:   local,
		remote:  remote,
		windows: make(map[int64]*Window),
	}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

// LocalAddr returns the endpoint's own address.
func (e *Endpoint) LocalAddr() Addr { return e.local }

// RemoteAddr returns the peer's address.
func (e *Endpoint) RemoteAddr() Addr { return e.remote }

// Send transmits data to the peer (scif_send). It returns the virtual cost
// of the transfer. Messages are delivered in order; Send does not block on
// the receiver (the kernel-side queue is unbounded in this model, which is
// safe because Snapify's drain protocol — not backpressure — is what
// guarantees empty channels at capture time).
func (e *Endpoint) Send(data []byte) (simclock.Duration, error) {
	p := e.peer
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	e.mu.Unlock()

	cp := make([]byte, len(data))
	copy(cp, data)

	// Consult the armed fault plan, if any. Drop severs the connection
	// (a link failure mid-message); Corrupt flips the framing byte so
	// the receiver's decoder rejects the message (the analogue of a
	// checksum failure); Truncate delivers only a prefix; Slow scales
	// the virtual cost. Cost faults apply after delivery.
	slow := simclock.Duration(1)
	if fault := e.net.fabric.Injector().Fire(faultinject.SiteSend,
		faultinject.LinkKey(e.local.Node.String(), e.remote.Node.String())); fault != nil {
		switch fault.Kind {
		case faultinject.Drop:
			_ = e.Close() //nolint:errcheck // simulating a link failure; the severed endpoint's close error is immaterial
			return 0, ErrConnReset
		case faultinject.Corrupt:
			if len(cp) > 0 {
				cp[0] ^= 0xFF
			}
		case faultinject.Truncate:
			cp = cp[:len(cp)/2]
		case faultinject.Slow:
			slow = simclock.Duration(fault.SlowFactor())
		}
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, ErrConnReset
	}
	p.queue = append(p.queue, cp)
	p.qbytes += int64(len(cp))
	p.cond.Signal()
	p.mu.Unlock()
	return slow * e.net.fabric.MsgCost(e.local.Node, e.remote.Node, int64(len(data))), nil
}

// Recv blocks until a message arrives and returns it with the receive-side
// virtual cost (the copy out of the kernel queue).
func (e *Endpoint) Recv() ([]byte, simclock.Duration, error) {
	e.mu.Lock()
	for len(e.queue) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.queue) == 0 { // closed and drained
		e.mu.Unlock()
		return nil, 0, ErrConnReset
	}
	msg := e.queue[0]
	e.queue = e.queue[1:]
	e.qbytes -= int64(len(msg))
	e.mu.Unlock()

	m := e.net.fabric.Model()
	var d simclock.Duration
	if e.local.Node.IsHost() {
		d = m.HostMemcpy(int64(len(msg)))
	} else {
		d = m.PhiMemcpy(int64(len(msg)))
	}
	return msg, d, nil
}

// TryRecv returns a pending message without blocking; ok is false when the
// queue is empty.
func (e *Endpoint) TryRecv() (msg []byte, d simclock.Duration, ok bool, err error) {
	e.mu.Lock()
	if len(e.queue) == 0 {
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return nil, 0, false, ErrConnReset
		}
		return nil, 0, false, nil
	}
	m := e.queue[0]
	e.queue = e.queue[1:]
	e.qbytes -= int64(len(m))
	e.mu.Unlock()
	return m, e.net.fabric.Model().HostMemcpy(int64(len(m))), true, nil
}

// QueuedBytes returns the bytes sent to this endpoint but not yet received.
// Snapify's consistency invariant requires this to be zero on every channel
// at the instant a snapshot is captured.
func (e *Endpoint) QueuedBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.qbytes
}

// QueuedMessages returns the number of undelivered messages.
func (e *Endpoint) QueuedMessages() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// Closed reports whether the endpoint has been closed (or reset).
func (e *Endpoint) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Close tears down both ends of the connection. Pending and future Recvs on
// the peer fail with ErrConnReset once their queues drain; registered
// windows are dropped. Closing an already-closed endpoint is a no-op.
func (e *Endpoint) Close() error {
	e.closeOneSide()
	if e.peer != nil {
		e.peer.closeOneSide()
	}
	return nil
}

func (e *Endpoint) closeOneSide() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.windows = make(map[int64]*Window)
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Node returns the SCIF node this endpoint lives on.
func (e *Endpoint) Node() simnet.NodeID { return e.local.Node }
