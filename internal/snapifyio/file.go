package snapifyio

import (
	"fmt"
	"io"

	"snapify/internal/blob"
	"snapify/internal/obs"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
)

// File is a Snapify-IO handle, the analogue of the UNIX file descriptor
// snapifyio_open returns. A Write-mode file implements stream.Sink; a
// Read-mode file implements stream.Source. Chunk costs report the three
// pipeline stages (local copy, RDMA, remote file system) so the consumer
// composes them with its own stages.
//
// With one staging slot the handle is the paper's synchronous ping-pong:
// each chunk is fully acknowledged before the next is sent. With more
// slots, writes keep up to slots-1 chunks in flight (the SCIF transfer of
// chunk k overlaps the local copy of chunk k+1) and reads prefetch up to
// slots chunks ahead; a pipelined writer should Flush before Close so the
// tail's cost is accounted.
type File struct {
	node    simnet.NodeID
	target  simnet.NodeID
	mode    Mode
	ep      *scif.Endpoint
	slots   []*slot
	bufSize int64
	model   *simclock.Model
	size    int64

	streamID int64
	release  func() // drops the stream's fabric flow

	// Per-stream metrics, resolved at open (all nil-safe no-ops when the
	// service runs without observability).
	bytesCtr  *obs.Counter
	chunkHist *obs.Histogram
	abortCtr  *obs.Counter
	detachCtr *obs.Counter
	errCtr    *obs.Counter

	// pending is fixed overhead (open handshake) charged on the next chunk.
	pending simclock.Duration

	// write-mode pipeline state.
	inflight  int   // chunks sent but not yet acknowledged
	seq       int   // round-robin slot cursor
	fileOff   int64 // next write offset; -1 means append (unstriped)
	stripeEnd int64

	// Acknowledgement watermark: lengths of in-flight chunks in send
	// order, and the bytes durably written by the remote daemon so far.
	// Acks arrive in send order and a chunk is written in full before
	// it is acknowledged, so acked is always a contiguous prefix of the
	// stream's payload — the resume point after a fault.
	sentLens []int64
	acked    int64

	// read-mode prefetch state.
	pulls   int // outstanding msgPull requests
	current blob.Blob
	curOff  int64
	eof     bool

	closed bool
}

var (
	_ stream.Sink    = (*File)(nil)
	_ stream.Source  = (*File)(nil)
	_ stream.Flusher = (*File)(nil)
)

// Mode returns the file's access mode.
func (f *File) Mode() Mode { return f.mode }

// Size returns the remote file size (read mode only).
func (f *File) Size() int64 { return f.size }

// StreamID returns the wire-protocol stream ID.
func (f *File) StreamID() int64 { return f.streamID }

// localCopy is the user-process-to-staging (or back) stage on f's node.
func (f *File) localCopy(n int64) simclock.Duration {
	d := f.model.UnixSocketLatency
	if f.node.IsHost() {
		return d + f.model.HostMemcpy(n)
	}
	return d + f.model.PhiMemcpy(n)
}

// awaitAck consumes one write acknowledgment. When stages is non-nil the
// ack's transfer and file-system costs are accumulated into it; Close
// passes nil because a drained tail it never accounted can only discard
// costs, not correctness.
func (f *File) awaitAck(stages *[3]simclock.Duration) error {
	raw, _, err := f.ep.Recv()
	if err != nil {
		return err
	}
	u, err := expect(raw, msgChunkAck)
	if err != nil {
		return err
	}
	if sid := u.i64(); sid != f.streamID {
		return fmt.Errorf("snapifyio: ack for stream %d on stream %d", sid, f.streamID)
	}
	u.u8() // slot index; acks arrive in send order
	f.inflight--
	msg := u.str()
	rdma := u.dur() + f.model.SCIFMsgLatency // notify + DMA
	fsWrite := u.dur()
	if err := u.err(); err != nil {
		return err
	}
	chunkLen := int64(0)
	if len(f.sentLens) > 0 {
		chunkLen = f.sentLens[0]
		f.sentLens = f.sentLens[1:]
	}
	if msg != "" {
		// A nacked chunk was not durably written; it does not advance
		// the watermark.
		f.errCtr.Inc()
		return &RemoteError{Node: f.target, Path: "", Msg: msg}
	}
	f.acked += chunkLen
	if stages != nil {
		stages[1] += rdma
		stages[2] += fsWrite
	}
	return nil
}

// Acked returns the stream's acknowledgement watermark: the number of
// payload bytes the remote daemon has durably written and acknowledged.
// After a fault, a writer resumes from this offset instead of replaying
// the whole stripe. Part of stream.Watermarked.
func (f *File) Acked() int64 { return f.acked }

// Detach abandons the stream without poisoning a shared striped
// assembly: the remote daemon keeps the assembled ranges so a
// replacement stream can resume from the acknowledgement watermark.
// Contrast Abort, which discards the whole assembly.
func (f *File) Detach() {
	if f.closed {
		return
	}
	f.closed = true
	f.detachCtr.Inc()
	if f.release != nil {
		defer f.release()
	}
	w := &wire{}
	w.u8(msgDetach)
	f.ep.Send(w.buf) //nolint:errcheck // best effort: the remote handler also detaches on reset
	f.ep.Close()     //nolint:errcheck // detach path: dropping the connection carries the signal
}

// WriteBlob streams one chunk (split at the staging buffer size) to the
// remote file. Part of stream.Sink.
func (f *File) WriteBlob(b blob.Blob) (stream.Cost, error) {
	if f.closed {
		return stream.Cost{}, ErrFileClosed
	}
	if f.mode != Write {
		return stream.Cost{}, fmt.Errorf("snapifyio: write on %v-mode file", f.mode)
	}
	var stages [3]simclock.Duration
	err := b.ForEachChunk(f.bufSize, func(chunk blob.Blob) error {
		// Stage 1: user writes the socket; local handler fills a free slot.
		// The slot is free: at most slots-1 chunks are in flight, so the
		// chunk that last used this slot was already acknowledged.
		sl := f.seq % len(f.slots)
		f.seq++
		f.slots[sl].WriteBlob(0, chunk)
		stages[0] += f.localCopy(chunk.Len()) + f.pending
		f.pending = 0
		f.bytesCtr.Add(chunk.Len())
		f.chunkHist.Observe(chunk.Len())

		off := int64(-1)
		if f.fileOff >= 0 {
			off = f.fileOff
			if off+chunk.Len() > f.stripeEnd {
				return fmt.Errorf("snapifyio: chunk [%d,%d) overruns stripe ending at %d", off, off+chunk.Len(), f.stripeEnd)
			}
			f.fileOff += chunk.Len()
		}

		// Notify the remote daemon; with one slot this immediately awaits
		// the drain ack (the paper's ping-pong), with more the ack of an
		// earlier chunk is awaited instead, keeping slots-1 in flight.
		w := &wire{}
		w.u8(msgChunkReady)
		w.i64(f.streamID)
		w.u8(uint8(sl))
		w.i64(chunk.Len())
		w.i64(off)
		if _, err := f.ep.Send(w.buf); err != nil {
			return err
		}
		f.inflight++
		f.sentLens = append(f.sentLens, chunk.Len())
		for f.inflight > len(f.slots)-1 {
			if err := f.awaitAck(&stages); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return stream.Cost{}, err
	}
	return stream.Cost{Stages: stages[:]}, nil
}

// WriteBlobAt positions the stream at off within its stripe and streams
// one chunk there. Store-mode writers use it to ship only the chunks a
// have/need negotiation reported missing, skipping the stretches the
// store already holds.
func (f *File) WriteBlobAt(off int64, b blob.Blob) (stream.Cost, error) {
	if f.closed {
		return stream.Cost{}, ErrFileClosed
	}
	if f.mode != Write || f.fileOff < 0 {
		return stream.Cost{}, fmt.Errorf("snapifyio: positioned write on an unstriped %v-mode file", f.mode)
	}
	if off < 0 || off+b.Len() > f.stripeEnd {
		return stream.Cost{}, fmt.Errorf("snapifyio: positioned write [%d,%d) overruns stripe ending at %d", off, off+b.Len(), f.stripeEnd)
	}
	f.fileOff = off
	return f.WriteBlob(b)
}

// Flush drains the in-flight write tail and returns its cost. Part of
// stream.Flusher; a no-op on single-slot (synchronous) streams.
func (f *File) Flush() (stream.Cost, error) {
	if f.closed {
		return stream.Cost{}, ErrFileClosed
	}
	if f.mode != Write {
		return stream.Cost{}, fmt.Errorf("snapifyio: flush on %v-mode file", f.mode)
	}
	var stages [3]simclock.Duration
	for f.inflight > 0 {
		if err := f.awaitAck(&stages); err != nil {
			return stream.Cost{}, err
		}
	}
	return stream.Cost{Stages: stages[:]}, nil
}

// ensurePulls keeps up to len(slots) chunk requests outstanding so the
// daemon-side file read and RDMA of later chunks overlap consumption of
// earlier ones. Slot indices round-robin in pull order; replies arrive in
// the same order, and a slot is only re-requested after its previous reply
// was consumed (and its content snapshotted), so reuse is safe.
func (f *File) ensurePulls() error {
	for !f.eof && f.pulls < len(f.slots) {
		w := &wire{}
		w.u8(msgPull)
		w.i64(f.streamID)
		w.u8(uint8(f.seq % len(f.slots)))
		f.seq++
		if _, err := f.ep.Send(w.buf); err != nil {
			return err
		}
		f.pulls++
	}
	return nil
}

// Next returns up to max bytes of the remote file. Part of stream.Source.
func (f *File) Next(max int64) (blob.Blob, stream.Cost, error) {
	if f.closed {
		return blob.Blob{}, stream.Cost{}, ErrFileClosed
	}
	if f.mode != Read {
		return blob.Blob{}, stream.Cost{}, fmt.Errorf("snapifyio: read on %v-mode file", f.mode)
	}
	var cost stream.Cost
	if f.curOff >= f.current.Len() {
		if f.eof {
			return blob.Blob{}, stream.Cost{}, io.EOF
		}
		if err := f.ensurePulls(); err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
		raw, _, err := f.ep.Recv()
		if err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
		u, err := expect(raw, msgChunkHere)
		if err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
		if sid := u.i64(); sid != f.streamID {
			return blob.Blob{}, stream.Cost{}, fmt.Errorf("snapifyio: chunk for stream %d on stream %d", sid, f.streamID)
		}
		sl := int(u.u8())
		f.pulls--
		msg := u.str()
		n := u.i64()
		fsRead := u.dur()
		rdma := u.dur() + f.model.SCIFMsgLatency
		if err := u.err(); err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
		if msg != "" {
			f.errCtr.Inc()
			return blob.Blob{}, stream.Cost{}, &RemoteError{Node: f.target, Path: "", Msg: msg}
		}
		if n == 0 {
			f.eof = true
			// Drain the remaining prefetch replies (all EOF markers, since
			// the daemon reads the file in pull order) so Close's response
			// is not queued behind them.
			for f.pulls > 0 {
				raw, _, err := f.ep.Recv()
				if err != nil {
					return blob.Blob{}, stream.Cost{}, err
				}
				if _, err := expect(raw, msgChunkHere); err != nil {
					return blob.Blob{}, stream.Cost{}, err
				}
				f.pulls--
			}
			return blob.Blob{}, stream.Cost{}, io.EOF
		}
		if sl < 0 || sl >= len(f.slots) {
			return blob.Blob{}, stream.Cost{}, fmt.Errorf("snapifyio: chunk names slot %d of %d", sl, len(f.slots))
		}
		f.current = f.slots[sl].SnapshotRange(0, n)
		f.curOff = 0
		f.bytesCtr.Add(n)
		f.chunkHist.Observe(n)
		// Stage 3: local handler copies buffer -> socket -> user. With one
		// slot the read path is request-response over a single staging
		// buffer, so the stages serialize — this is why device-to-host
		// writes (whose host file-system writeback overlaps the PCIe
		// transfer) outrun host-to-device reads in Section 7. Prefetching
		// streams overlap the legs instead.
		cost = stream.Cost{
			Stages: []simclock.Duration{fsRead, rdma, f.localCopy(n) + f.pending},
			Serial: len(f.slots) == 1,
		}
		f.pending = 0
		if err := f.ensurePulls(); err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
	}
	n := max
	if rem := f.current.Len() - f.curOff; rem < n {
		n = rem
	}
	chunk := f.current.Slice(f.curOff, n)
	f.curOff += n
	return chunk, cost, nil
}

// Close finalizes the stream: in write mode the remote file (or this
// stream's stripe of it) becomes visible; in read mode resources are
// released. Any in-flight pipeline tail is drained first.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.release != nil {
		defer f.release()
	}
	defer f.ep.Close() //nolint:errcheck // close releases the endpoint; the msgClose round-trip below carries the real error
	// Drain in-flight traffic so the close response is the next message.
	for f.inflight > 0 {
		if err := f.awaitAck(nil); err != nil {
			return err
		}
	}
	for f.pulls > 0 {
		raw, _, err := f.ep.Recv()
		if err != nil {
			return err
		}
		if _, err := expect(raw, msgChunkHere); err != nil {
			return err
		}
		f.pulls--
	}
	w := &wire{}
	w.u8(msgClose)
	if _, err := f.ep.Send(w.buf); err != nil {
		return err
	}
	raw, _, err := f.ep.Recv()
	if err != nil {
		return err
	}
	u, err := expect(raw, msgCloseResp)
	if err != nil {
		return err
	}
	msg := u.str()
	if err := u.err(); err != nil {
		return err
	}
	if msg != "" {
		return &RemoteError{Node: f.target, Path: "", Msg: msg}
	}
	return nil
}

// Abort discards the stream; in write mode the partial remote file (and,
// for stripes, the whole shared assembly) is dropped.
func (f *File) Abort() {
	if f.closed {
		return
	}
	f.closed = true
	f.abortCtr.Inc()
	if f.release != nil {
		defer f.release()
	}
	w := &wire{}
	w.u8(msgAbort)
	f.ep.Send(w.buf) //nolint:errcheck // best effort: the remote handler also aborts on reset
	f.ep.Close()     //nolint:errcheck // abort path: dropping the connection is the abort signal
}
