package experiments

import (
	"fmt"

	"snapify/internal/mpi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/trace"
	"snapify/internal/workloads"
)

// Fig11RankCounts are the MPI task counts of the experiment.
var Fig11RankCounts = []int{1, 2, 4}

// Fig11Row is one (benchmark, rank count) cell.
type Fig11Row struct {
	Code  string
	Ranks int

	CheckpointTime simclock.Duration // (a)
	RestartTime    simclock.Duration // (b)
	PerRankBytes   int64             // (c)

	// Runtime is the extrapolated checkpoint-free runtime (the paper
	// reports 2–3 minutes for class C).
	Runtime simclock.Duration
}

// Fig11Result is the MPI checkpoint/restart experiment.
type Fig11Result struct {
	Rows []Fig11Row
}

// fig11Iterations is how many real iterations each measurement runs before
// the checkpoint; the full-run time is extrapolated from them.
const fig11Iterations = 2

// Fig11 runs coordinated checkpoint and restart for LU-MZ, SP-MZ, and
// BT-MZ (class C) with 1, 2, and 4 MPI ranks, one rank per cluster node.
func Fig11() (*Fig11Result, error) {
	res := &Fig11Result{}
	for _, spec := range workloads.NASMZ {
		for _, ranks := range Fig11RankCounts {
			row, err := fig11One(spec, ranks)
			if err != nil {
				return nil, fmt.Errorf("fig11 %s x%d: %w", spec.Code, ranks, err)
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

func fig11One(spec workloads.MZSpec, ranks int) (*Fig11Row, error) {
	cluster, err := mpi.NewCluster(ranks, platform.Config{Server: serverConfig()})
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	w, err := mpi.NewWorld(cluster, ranks)
	if err != nil {
		return nil, err
	}

	instances := make([]*workloads.Instance, ranks)
	err = w.Run(func(r *mpi.Rank) error {
		in, err := workloads.LaunchMZRank(r, spec, ranks)
		if err != nil {
			return err
		}
		instances[r.ID] = in
		return workloads.RunMZIterations(r, in, fig11Iterations)
	})
	if err != nil {
		return nil, err
	}

	row := &Fig11Row{Code: spec.Code, Ranks: ranks}

	// Extrapolate the checkpoint-free runtime from the measured
	// iterations (rank 0's timeline; barriers keep ranks aligned).
	launch := instances[0].Runtime()
	perIter := simclock.Duration(0)
	if fig11Iterations > 0 {
		perIter = instances[0].Runtime() / simclock.Duration(fig11Iterations)
	}
	row.Runtime = launch/simclock.Duration(fig11Iterations+1) + perIter*simclock.Duration(spec.Iterations)

	// (a) + (c): coordinated checkpoint.
	rep, err := w.Checkpoint("/fig11/" + spec.Code)
	if err != nil {
		return nil, err
	}
	row.CheckpointTime = rep.Total
	var sum int64
	for _, b := range rep.PerRankBytes {
		sum += b
	}
	row.PerRankBytes = sum / int64(ranks)

	// (b): the job dies and restarts.
	w.Close()
	w2, rrep, err := cluster.Restart("/fig11/"+spec.Code, ranks)
	if err != nil {
		return nil, err
	}
	row.RestartTime = rrep.Total
	w2.Close()
	return row, nil
}

// Render prints the three sub-figures.
func (r *Fig11Result) Render() string {
	a := trace.New("Fig 11(a): MPI checkpoint time (class C)", "Benchmark", "Ranks", "Checkpoint")
	b := trace.New("Fig 11(b): MPI restart time (class C)", "Benchmark", "Ranks", "Restart")
	c := trace.New("Fig 11(c): Checkpoint size of a single rank", "Benchmark", "Ranks", "Per-rank size")
	for _, row := range r.Rows {
		a.Row(row.Code, row.Ranks, trace.Seconds(row.CheckpointTime))
		b.Row(row.Code, row.Ranks, trace.Seconds(row.RestartTime))
		c.Row(row.Code, row.Ranks, trace.Bytes(row.PerRankBytes))
	}
	return a.String() + "\n" + b.String() + "\n" + c.String()
}

// CheckShape verifies the paper's claims: per-rank checkpoint size and CR
// time decrease as ranks increase, and the checkpoint-free runtime dwarfs
// a single checkpoint (the feasibility argument for frequent checkpoints).
func (r *Fig11Result) CheckShape() error {
	byBench := map[string]map[int]Fig11Row{}
	for _, row := range r.Rows {
		if byBench[row.Code] == nil {
			byBench[row.Code] = map[int]Fig11Row{}
		}
		byBench[row.Code][row.Ranks] = row
	}
	for code, m := range byBench {
		r1, r2, r4 := m[1], m[2], m[4]
		if !(r1.PerRankBytes > r2.PerRankBytes && r2.PerRankBytes > r4.PerRankBytes) {
			return fmt.Errorf("fig11 %s: per-rank size not decreasing: %d %d %d",
				code, r1.PerRankBytes, r2.PerRankBytes, r4.PerRankBytes)
		}
		if !(r1.CheckpointTime > r4.CheckpointTime) {
			return fmt.Errorf("fig11 %s: checkpoint time not decreasing with ranks: %v -> %v",
				code, r1.CheckpointTime, r4.CheckpointTime)
		}
		for ranks, row := range m {
			if row.CheckpointTime <= 0 || row.RestartTime <= 0 {
				return fmt.Errorf("fig11 %s x%d: non-positive CR time", code, ranks)
			}
			if row.Runtime < 10*row.CheckpointTime {
				return fmt.Errorf("fig11 %s x%d: runtime %v too close to checkpoint cost %v for frequent checkpoints",
					code, ranks, row.Runtime, row.CheckpointTime)
			}
		}
	}
	return nil
}
