package core

import (
	"fmt"
	"sync"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/coi"
	"snapify/internal/simnet"
)

// TestParallelSerialCapturesByteIdentical is the golden test for the
// striped data path: the same frozen process is captured once serially
// and once across 4 Snapify-IO streams, and the two context files on the
// host file system must be byte-for-byte identical. Striping changes who
// writes which range, never what lands in the file.
func TestParallelSerialCapturesByteIdentical(t *testing.T) {
	r := newRig(t, "core_golden", 1)
	r.count(t, 25)

	capture := func(dir string, opts CaptureOptions) {
		t.Helper()
		s := NewSnapshot(dir, r.cp)
		if err := s.Pause(); err != nil {
			t.Fatal(err)
		}
		if err := s.Capture(opts); err != nil {
			t.Fatal(err)
		}
		if err := s.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := s.Resume(); err != nil {
			t.Fatal(err)
		}
	}
	// No work runs between the two captures, so the frozen image is the
	// same both times; CaptureFull does not reset dirty tracking.
	capture("/snap/golden/serial", CaptureOptions{})
	capture("/snap/golden/parallel", CaptureOptions{Streams: 4})

	serial, _, err := r.plat.Host().FS.ReadFile("/snap/golden/serial/" + coi.ContextFileName)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := r.plat.Host().FS.ReadFile("/snap/golden/parallel/" + coi.ContextFileName)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != parallel.Len() {
		t.Fatalf("context sizes differ: serial %d, parallel %d", serial.Len(), parallel.Len())
	}
	if !blob.Equal(serial, parallel) {
		t.Error("parallel capture is not byte-identical to the serial capture")
	}
}

// TestParallelCaptureReportsStreams pins the per-stream accounting: a
// 4-stream capture must report 4 worker durations whose max equals the
// capture duration, and a serial capture must report exactly one stream.
func TestParallelCaptureReportsStreams(t *testing.T) {
	r := newRig(t, "core_streams", 1)
	r.count(t, 10)

	s := NewSnapshot("/snap/streams/par", r.cp)
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := s.Capture(CaptureOptions{Streams: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if s.Report.CaptureStreams != 4 {
		t.Errorf("CaptureStreams = %d, want 4", s.Report.CaptureStreams)
	}
	if len(s.Report.CaptureStreamDurations) != 4 {
		t.Fatalf("CaptureStreamDurations has %d entries, want 4", len(s.Report.CaptureStreamDurations))
	}
	max := s.Report.CaptureStreamDurations[0]
	for _, d := range s.Report.CaptureStreamDurations {
		if d <= 0 {
			t.Errorf("stream duration %v must be positive", d)
		}
		if d > max {
			max = d
		}
	}
	if max != s.Report.Capture {
		t.Errorf("capture duration %v != slowest stream %v", s.Report.Capture, max)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}

	s2 := NewSnapshot("/snap/streams/serial", r.cp)
	if err := s2.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Capture(CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Wait(); err != nil {
		t.Fatal(err)
	}
	if s2.Report.CaptureStreams != 1 {
		t.Errorf("serial CaptureStreams = %d, want 1", s2.Report.CaptureStreams)
	}
	if s2.Report.CaptureStreamDurations != nil {
		t.Errorf("serial capture reported %d stream durations, want none",
			len(s2.Report.CaptureStreamDurations))
	}
	if err := s2.Resume(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelCaptureRestoreEquivalence captures with 4 streams and
// terminate, restores with 4 streams, and checks the application computes
// the same answer it would have without the snapshot: the parallel data
// path preserves process state exactly.
func TestParallelCaptureRestoreEquivalence(t *testing.T) {
	r := newRig(t, "core_par_rt", 1)
	r.count(t, 30)

	s := NewSnapshot("/snap/par_rt", r.cp)
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := s.Capture(CaptureOptions{Terminate: true, Streams: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(1, RestoreOptions{Streams: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := r.count(t, 60); got != refSum(60) {
		t.Errorf("after parallel restore: result %d, want %d", got, refSum(60))
	}
}

// TestConcurrentParallelCaptures is the multi-stream stress test: several
// applications on one card capture with 4 streams each at the same time,
// so the card's Snapify-IO daemon is assembling many striped files at
// once while the monitor thread keeps serving pause traffic. Run under
// -race this exercises the locking in the daemon's open-file table, the
// striped assembly state, and the fanout worker pools.
func TestConcurrentParallelCaptures(t *testing.T) {
	coi.RegisterBinary(testBinary("core_par_conc"))
	r := newRig(t, "core_par_conc_unused", 1) // builds platform + daemons
	plat := r.plat

	const apps = 4
	rigs := make([]*rig, apps)
	for i := range rigs {
		host := plat.Procs.Spawn(fmt.Sprintf("host_par_conc_%d", i), simnet.HostNode, plat.Host().Mem)
		cp, err := coi.CreateProcess(plat, host, r.tl, 1, "core_par_conc")
		if err != nil {
			t.Fatal(err)
		}
		pl, err := cp.CreatePipeline()
		if err != nil {
			t.Fatal(err)
		}
		rigs[i] = &rig{plat: plat, host: host, tl: r.tl, cp: cp, pl: pl}
	}

	var wg sync.WaitGroup
	errs := make([]error, apps)
	for i, rg := range rigs {
		wg.Add(1)
		go func(i int, rg *rig) {
			defer wg.Done()
			fail := func(err error) { errs[i] = fmt.Errorf("app %d: %w", i, err) }
			if _, err := rg.pl.RunFunction("count", makeCountArgs(15)); err != nil {
				fail(err)
				return
			}
			// Two back-to-back striped snapshots per app, 4 streams each.
			for gen := 0; gen < 2; gen++ {
				s := NewSnapshot(fmt.Sprintf("/snap/par_conc/%d_%d", i, gen), rg.cp)
				if err := s.Pause(); err != nil {
					fail(err)
					return
				}
				if err := s.Capture(CaptureOptions{Streams: 4}); err != nil {
					fail(err)
					return
				}
				if err := s.Wait(); err != nil {
					fail(err)
					return
				}
				if err := s.Resume(); err != nil {
					fail(err)
					return
				}
			}
			out, err := rg.pl.RunFunction("count", makeCountArgs(35))
			if err != nil {
				fail(err)
				return
			}
			if got := decodeU64(out); got != refSum(35) {
				fail(fmt.Errorf("result %d, want %d", got, refSum(35)))
			}
		}(i, rg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	// Every striped context file must have been fully assembled.
	for i := 0; i < apps; i++ {
		for gen := 0; gen < 2; gen++ {
			path := fmt.Sprintf("/snap/par_conc/%d_%d/%s", i, gen, coi.ContextFileName)
			if !plat.Host().FS.Exists(path) {
				t.Errorf("missing context file %s", path)
			}
		}
	}
}
