// Package nfs models the NFS mount MPSS provides on a Xeon Phi card: the
// host file system exported over the TCP/IP virtio interface (mic0), which
// is the storage baseline Snapify-IO is compared against in Tables 3 and 4.
//
// Three write configurations are implemented, matching Section 6:
//
//   - Sync: the path BLCR's kernel writer takes — every write() becomes at
//     least one synchronous RPC, so BLCR's many small metadata records and
//     page-granular writes each pay a full round trip. This is the plain
//     "NFS" row of Table 4.
//   - KernelBuffered: the paper's modified BLCR kernel module accumulates
//     writes into a large chunk before hitting the wire ("NFS-Buffered in
//     kernel").
//   - UserBuffered: the paper's user-space utility that BLCR's output is
//     piped through; same idea one level up, with an extra copy and a
//     smaller buffer ("NFS-Buffered in user").
//
// Reads always enjoy client readahead, which keeps RPC latency off the
// critical path — the reason the paper notes that "the buffering solutions
// do not apply to the cases of restarting".
package nfs

import (
	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
)

// Buffer sizes of the two buffered variants.
const (
	// KernelBufSize is the in-kernel accumulation chunk.
	KernelBufSize = 4 * simclock.MiB
	// UserBufSize is the user-space utility's buffer.
	UserBufSize = 1 * simclock.MiB
)

// Mount is the host file system NFS-mounted on one coprocessor.
type Mount struct {
	fabric *simnet.Fabric
	model  *simclock.Model
	node   simnet.NodeID // the client (card) node
	host   *hostfs.FS
}

// NewMount mounts host's file system on the card at node.
func NewMount(fabric *simnet.Fabric, node simnet.NodeID, host *hostfs.FS) *Mount {
	if node.IsHost() {
		panic("nfs: the host does not NFS-mount itself") //nolint:paniclib // configuration bug: mounts are built at platform setup, not at runtime
	}
	return &Mount{fabric: fabric, model: fabric.Model(), node: node, host: host}
}

// Node returns the client node.
func (m *Mount) Node() simnet.NodeID { return m.node }

// rpcs returns the number of RPCs needed to carry n bytes at the mount's
// rsize/wsize.
func (m *Mount) rpcs(n int64) int64 {
	t := m.model.NFSMaxTransfer
	return (n + t - 1) / t
}

// wireCost is the virtio transfer cost of n bytes, including traffic
// accounting on the fabric.
func (m *Mount) wireCost(n int64, toHost bool) simclock.Duration {
	if toHost {
		return m.fabric.VirtioCost(m.node, simnet.HostNode, n)
	}
	return m.fabric.VirtioCost(simnet.HostNode, m.node, n)
}

// CreateSync opens path for plain synchronous writes (the unmodified BLCR
// path of Table 4).
func (m *Mount) CreateSync(path string) (stream.Sink, error) {
	w, err := m.host.Create(path)
	if err != nil {
		return nil, err
	}
	return &syncSink{m: m, w: w}, nil
}

type syncSink struct {
	m *Mount
	w *hostfs.Writer
}

func (s *syncSink) WriteBlob(b blob.Blob) (stream.Cost, error) {
	fsWrite, err := s.w.WriteBlob(b)
	if err != nil {
		return stream.Cost{}, err
	}
	// Every write() is synchronous: the client blocks for each RPC round
	// trip; nothing overlaps.
	d := simclock.Duration(s.m.rpcs(b.Len()))*s.m.model.NFSRPCLatency +
		s.m.wireCost(b.Len(), true) + fsWrite
	return stream.Cost{Stages: []simclock.Duration{d}, Serial: true}, nil
}

func (s *syncSink) Close() error { return s.w.Close() }
func (s *syncSink) Abort()       { s.w.Abort() }

// CreateBuffered opens path the way an ordinary buffered writer (cp, dd)
// does: through the client page cache with write-behind. The cost behaviour
// is the same as the kernel-buffered checkpoint path — Table 3's "NFS"
// column measures exactly this.
func (m *Mount) CreateBuffered(path string) (stream.Sink, error) {
	return m.CreateKernelBuffered(path)
}

// CreateKernelBuffered opens path with the modified-BLCR kernel buffering.
func (m *Mount) CreateKernelBuffered(path string) (stream.Sink, error) {
	w, err := m.host.Create(path)
	if err != nil {
		return nil, err
	}
	return &bufferedSink{m: m, w: w, bufSize: KernelBufSize, copies: 1}, nil
}

// CreateUserBuffered opens path with the user-space buffering utility.
func (m *Mount) CreateUserBuffered(path string) (stream.Sink, error) {
	w, err := m.host.Create(path)
	if err != nil {
		return nil, err
	}
	// BLCR's output is redirected through the utility's stdin: one extra
	// pipe copy on the card's slow cores, and the single-threaded utility
	// alternates between draining the pipe and writing NFS, so its flushes
	// do not overlap the producer — the reason the paper calls its boost
	// "a lesser degree" than the kernel module's.
	return &bufferedSink{m: m, w: w, bufSize: UserBufSize, copies: 2, serialFlush: true}, nil
}

// bufferedSink accumulates writes into bufSize chunks before paying the
// wire; flushes pipeline with the producer (asynchronous writeback).
type bufferedSink struct {
	m           *Mount
	w           *hostfs.Writer
	bufSize     int64
	copies      int  // memcpys on the card before the wire
	serialFlush bool // flushes do not overlap the producer

	held      []blob.Blob
	heldBytes int64
}

func (s *bufferedSink) WriteBlob(b blob.Blob) (stream.Cost, error) {
	// The producer's write lands in the buffer at memcpy speed.
	copyCost := simclock.Duration(s.copies) * s.m.model.PhiMemcpy(b.Len())
	s.held = append(s.held, b)
	s.heldBytes += b.Len()
	if s.heldBytes < s.bufSize {
		return stream.Cost{Stages: []simclock.Duration{copyCost}}, nil
	}
	cost, err := s.flush()
	if err != nil {
		return stream.Cost{}, err
	}
	cost.Stages[0] += copyCost
	return cost, nil
}

func (s *bufferedSink) flush() (stream.Cost, error) {
	if s.heldBytes == 0 {
		return stream.Cost{Stages: []simclock.Duration{0, 0}}, nil
	}
	n := s.heldBytes
	content := blob.Concat(s.held...)
	s.held = nil
	s.heldBytes = 0
	fsWrite, err := s.w.WriteBlob(content)
	if err != nil {
		return stream.Cost{}, err
	}
	// One latency per buffer commit; the bulk moves at wire speed and —
	// for the kernel module — overlaps with the producer refilling the
	// buffer.
	wire := s.m.model.NFSRPCLatency + s.m.wireCost(n, true) + fsWrite
	return stream.Cost{Stages: []simclock.Duration{0, wire}, Serial: s.serialFlush}, nil
}

func (s *bufferedSink) Close() error {
	if _, err := s.flush(); err != nil {
		return err
	}
	return s.w.Close()
}

func (s *bufferedSink) Abort() { s.w.Abort() }

// Open returns a read source with client readahead.
func (m *Mount) Open(path string) (stream.Source, error) {
	r, err := m.host.Open(path)
	if err != nil {
		return nil, err
	}
	return &readSource{m: m, r: r}, nil
}

type readSource struct {
	m *Mount
	r *hostfs.Reader
}

func (s *readSource) Next(max int64) (blob.Blob, stream.Cost, error) {
	b, fsRead, err := s.r.Next(max)
	if err != nil {
		return blob.Blob{}, stream.Cost{}, err
	}
	// Readahead keeps NFSReadAhead RPCs in flight, hiding all but a
	// fraction of the per-RPC latency; the wire and the server read
	// pipeline with the consumer.
	ra := int64(s.m.model.NFSReadAhead)
	if ra < 1 {
		ra = 1
	}
	lat := simclock.Duration(s.m.rpcs(b.Len())/ra+1) * s.m.model.NFSRPCLatency
	wire := s.m.wireCost(b.Len(), false)
	return b, stream.Cost{Stages: []simclock.Duration{fsRead, lat + wire}}, nil
}

func (s *readSource) Size() int64  { return s.r.Size() }
func (s *readSource) Close() error { return nil }
