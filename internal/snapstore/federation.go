package snapstore

// Federation makes a set of per-host stores behave like one fleet-wide
// snapshot repository (DESIGN.md §15): cross-host ships negotiate
// have/need against the destination store so repeated migrations of
// similar images move almost nothing, and k-copy replication of
// snapshot directories plus an idempotent repair loop make a whole-host
// kill survivable — every replicated snapshot can be restored from a
// surviving holder with byte-identical content.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"snapify/internal/blob"
	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// ErrHostDead reports an operation that named a federation member
// killed by KillHost (or by an injected Crash mid-op). The op fails;
// surviving members are untouched and the op is retryable against them.
var ErrHostDead = errors.New("snapstore: federation host is dead")

// LinkModel prices the inter-host link every cross-host byte crosses.
type LinkModel struct {
	Latency   simclock.Duration
	Bandwidth int64 // bytes per second
}

// DefaultLink models a 10 GbE-class cluster interconnect.
func DefaultLink() LinkModel {
	return LinkModel{Latency: 100 * time.Microsecond, Bandwidth: 1200 * simclock.MiB}
}

// CrossRackLink models the slower aggregation-layer path between racks:
// higher latency and roughly a third of the in-rack bandwidth.
func CrossRackLink() LinkModel {
	return LinkModel{Latency: 500 * time.Microsecond, Bandwidth: 400 * simclock.MiB}
}

// cost prices moving n bytes across the link.
func (l LinkModel) cost(n int64) simclock.Duration {
	return l.Latency + simclock.Rate(l.Bandwidth)(n)
}

// Cost prices moving n bytes across the link (the exported form placement
// scorers use).
func (l LinkModel) Cost(n int64) simclock.Duration { return l.cost(n) }

// InjectorFunc resolves the current fault injector at fire time (nil
// injector, or a nil func, means no faults). The alias lets callers
// outside the fault-injection choke points (sched's fleet control
// plane) thread an injector through without importing faultinject —
// the faultgate boundary (DESIGN.md §10) stays intact because only the
// choke point dereferences it.
type InjectorFunc = func() *faultinject.Injector

// replicaSet records where the copies of one replicated snapshot
// directory live. Holders includes the original host.
type replicaSet struct {
	dir     string
	k       int
	holders []string // sorted; dead members pruned lazily by Repair
}

// Federation is the fleet-wide control plane over per-host stores. It
// is bookkeeping plus data movement: placement records (which hosts
// hold which replicated directory) survive any member's death, like a
// real deployment's external metadata service.
type Federation struct {
	link     LinkModel
	injector InjectorFunc
	obs      *obs.Obs

	mu      sync.Mutex
	names   []string // sorted member names
	members map[string]*Store
	dead    map[string]bool
	sets    map[string]*replicaSet
	// links holds per-host-pair overrides of the uniform link model,
	// keyed by the sorted pair (SetLink). Pairs without an entry fall
	// back to the uniform link, so topologies are opt-in and the
	// default federation behaves exactly as before.
	links map[string]LinkModel

	chunksShipped *obs.Counter
	chunksDeduped *obs.Counter
	bytesShipped  *obs.Counter
	repairs       *obs.Counter
}

// NewFederation builds an empty federation. o carries the federation's
// spans and metrics (typically the observer of the host driving the
// fleet); injector may be nil.
func NewFederation(o *obs.Obs, link LinkModel, injector InjectorFunc) *Federation {
	reg := o.MetricsOf()
	f := &Federation{
		link:     link,
		injector: injector,
		obs:      o,
		members:  make(map[string]*Store),
		dead:     make(map[string]bool),
		sets:     make(map[string]*replicaSet),
		links:    make(map[string]LinkModel),
		chunksShipped: reg.Counter("fed_chunks_shipped_total",
			"Chunks physically shipped across hosts."),
		chunksDeduped: reg.Counter("fed_chunks_deduped_total",
			"Chunks a cross-host negotiation found already at the destination."),
		bytesShipped: reg.Counter("fed_bytes_shipped_total",
			"Bytes physically shipped across hosts."),
		repairs: reg.Counter("fed_repairs_total",
			"Replicas re-established by the repair loop."),
	}
	reg.RegisterCollector(func(r *obs.Registry) {
		r.Gauge("fed_replica_lag", "Replica sets below their replication target.").Set(int64(f.ReplicaLag()))
	})
	return f
}

func (f *Federation) fire(key string) *faultinject.Fault {
	if f.injector == nil {
		return nil
	}
	return f.injector().Fire(faultinject.SiteFederation, key)
}

// Add registers a member host's store under name.
func (f *Federation) Add(name string, st *Store) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.members[name]; ok {
		return fmt.Errorf("snapstore: federation member %s already registered", name)
	}
	f.members[name] = st
	f.names = append(f.names, name)
	sort.Strings(f.names)
	return nil
}

// pairKey canonicalizes an unordered host pair (links are symmetric).
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}

// SetLink overrides the link model between hosts a and b (symmetric).
// Pairs without an override use the federation-wide uniform link, so a
// topology — say intra-rack DefaultLink and CrossRackLink between
// racks — is built by overriding only the slow pairs.
func (f *Federation) SetLink(a, b string, l LinkModel) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[pairKey(a, b)] = l
}

// LinkBetween returns the link model priced between hosts a and b —
// the per-pair override if one was set, the uniform default otherwise.
func (f *Federation) LinkBetween(a, b string) LinkModel {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.linkLocked(a, b)
}

func (f *Federation) linkLocked(a, b string) LinkModel {
	if l, ok := f.links[pairKey(a, b)]; ok {
		return l
	}
	return f.link
}

// LinkCost prices moving n bytes between hosts a and b.
func (f *Federation) LinkCost(a, b string, n int64) simclock.Duration {
	return f.LinkBetween(a, b).cost(n)
}

// ClosestHolder returns the living holder of dir cheapest to reach from
// host `from` when moving `bytes` bytes, breaking cost ties by name for
// determinism. A holder equal to `from` wins outright (zero transfer).
// Empty when dir has no living holder.
func (f *Federation) ClosestHolder(dir, from string, bytes int64) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	best := ""
	var bestCost simclock.Duration
	for _, h := range f.holdersLocked(normPath(dir)) {
		if h == from {
			return h
		}
		c := f.linkLocked(from, h).cost(bytes)
		if best == "" || c < bestCost {
			best, bestCost = h, c
		}
	}
	return best
}

// StoreOf returns the live member's store.
func (f *Federation) StoreOf(name string) (*Store, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.storeLocked(name)
}

func (f *Federation) storeLocked(name string) (*Store, error) {
	st, ok := f.members[name]
	if !ok {
		return nil, fmt.Errorf("snapstore: federation has no member %s", name)
	}
	if f.dead[name] {
		return nil, fmt.Errorf("%w: %s", ErrHostDead, name)
	}
	return st, nil
}

// Alive reports whether name is a registered, living member.
func (f *Federation) Alive(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.members[name] != nil && !f.dead[name]
}

// Members returns the living member names, sorted.
func (f *Federation) Members() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.aliveLocked()
}

func (f *Federation) aliveLocked() []string {
	out := make([]string, 0, len(f.names))
	for _, n := range f.names {
		if !f.dead[n] {
			out = append(out, n)
		}
	}
	return out
}

// KillHost marks a member dead: its store becomes unreachable through
// the federation and its pending uploads die with it. Replica records
// naming it survive — they live in the federation's metadata, which is
// exactly what Repair consumes to re-establish k.
func (f *Federation) KillHost(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killLocked(name)
}

func (f *Federation) killLocked(name string) error {
	st, ok := f.members[name]
	if !ok {
		return fmt.Errorf("snapstore: federation has no member %s", name)
	}
	f.markDeadLocked(name, st)
	return nil
}

// markDeadLocked is the kill for a member whose store is already
// resolved — the injected-crash paths use it, where the destination
// was looked up before any fault could fire.
func (f *Federation) markDeadLocked(name string, st *Store) {
	if f.dead[name] {
		return
	}
	f.dead[name] = true
	st.AbortAll()
}

// ShipStats reports one cross-host snapshot ship.
type ShipStats struct {
	ChunksShipped int64
	ChunksDeduped int64
	BytesShipped  int64
	BytesLogical  int64
}

func (s *ShipStats) add(o ShipStats) {
	s.ChunksShipped += o.ChunksShipped
	s.ChunksDeduped += o.ChunksDeduped
	s.BytesShipped += o.BytesShipped
	s.BytesLogical += o.BytesLogical
}

// ShipSnapshot moves the store-resident snapshot at path from src to
// dst, negotiating have/need against the destination store first: only
// chunks dst lacks cross the link. The shipped manifest flattens the
// delta chain (no parent at dst) but lists the identical chunk digests,
// so restored content is byte-identical to the source.
func (f *Federation) ShipSnapshot(src, dst, path string) (ShipStats, simclock.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shipSnapshotLocked(src, dst, path)
}

func (f *Federation) shipSnapshotLocked(src, dst, path string) (ShipStats, simclock.Duration, error) {
	var stats ShipStats
	srcStore, err := f.storeLocked(src)
	if err != nil {
		return stats, 0, err
	}
	dstStore, err := f.storeLocked(dst)
	if err != nil {
		return stats, 0, err
	}
	m, dur, err := srcStore.Manifest(path)
	if err != nil {
		return stats, dur, err
	}
	if fault := f.fire("negotiate"); fault != nil && fault.Kind == faultinject.Crash {
		// The destination store crashed while negotiating: the host is
		// dead, nothing shipped, the source untouched.
		f.markDeadLocked(dst, dstStore)
		return stats, dur, fmt.Errorf("%w: %s crashed mid-negotiate shipping %s", ErrHostDead, dst, path)
	}
	link := f.linkLocked(src, dst)
	// The digest list crosses the link, the need set comes back.
	dur += link.cost(64 * int64(len(m.Chunks)))
	need, committed, d, err := dstStore.Negotiate(path, "", m.Size, m.ChunkBytes, m.Chunks)
	dur += d
	if err != nil {
		return stats, dur, err
	}
	dur += link.cost(8 * int64(len(need)))
	stats.BytesLogical = m.Size
	stats.ChunksDeduped = int64(len(m.Chunks) - len(need))
	f.chunksDeduped.Add(stats.ChunksDeduped)
	if committed {
		return stats, dur, nil
	}
	for _, idx := range need {
		content, d, err := srcStore.ReadChunk(m.Chunks[idx])
		dur += d
		if err != nil {
			return stats, dur, err
		}
		linkCost := link.cost(content.Len())
		if fault := f.fire("chunk"); fault != nil {
			switch fault.Kind {
			case faultinject.Crash:
				f.markDeadLocked(dst, dstStore)
				return stats, dur, fmt.Errorf("%w: %s crashed mid-ship of %s", ErrHostDead, dst, path)
			case faultinject.Slow:
				linkCost *= simclock.Duration(fault.SlowFactor())
			case faultinject.Drop:
				dstStore.AbortUpload(path)
				return stats, dur, fmt.Errorf("snapstore: federation link dropped shipping %s chunk %d (retryable)", path, idx)
			case faultinject.Corrupt, faultinject.Truncate:
				// Deliver a damaged copy; the destination's digest check
				// rejects it and the ship fails cleanly (retryable).
				dur += linkCost
				_, err := dstStore.PutChunkAt(path, int64(idx)*m.ChunkBytes, corruptChunk(content, fault.Kind))
				dstStore.AbortUpload(path)
				return stats, dur, fmt.Errorf("snapstore: federation ship of %s chunk %d damaged in flight: %v", path, idx, err)
			}
		}
		dur += linkCost
		d, err = dstStore.PutChunkAt(path, int64(idx)*m.ChunkBytes, content)
		dur += d
		if err != nil {
			return stats, dur, err
		}
		stats.ChunksShipped++
		stats.BytesShipped += content.Len()
	}
	f.chunksShipped.Add(stats.ChunksShipped)
	f.bytesShipped.Add(stats.BytesShipped)
	committed, d, err = dstStore.CloseUpload(path)
	dur += d
	if err != nil {
		return stats, dur, err
	}
	if !committed {
		return stats, dur, fmt.Errorf("snapstore: ship of %s closed without committing", path)
	}
	return stats, dur, nil
}

// corruptChunk damages a chunk payload the way the fault kind says.
func corruptChunk(b blob.Blob, kind faultinject.Kind) blob.Blob {
	if kind == faultinject.Truncate && b.Len() > 1 {
		return b.Slice(0, b.Len()-1)
	}
	data := append([]byte(nil), b.Bytes()...)
	if len(data) > 0 {
		data[0] ^= 0xFF
	}
	return blob.FromBytes(data)
}

// ShipFile copies one plain host file from src to dst, skipping the
// transfer when dst already holds identical content (whole-file dedup
// by digest — the runtime-libs blob ships once per destination, ever).
func (f *Federation) ShipFile(src, dst, path string) (ShipStats, simclock.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shipFileLocked(src, dst, path)
}

func (f *Federation) shipFileLocked(src, dst, path string) (ShipStats, simclock.Duration, error) {
	var stats ShipStats
	srcStore, err := f.storeLocked(src)
	if err != nil {
		return stats, 0, err
	}
	dstStore, err := f.storeLocked(dst)
	if err != nil {
		return stats, 0, err
	}
	content, dur, err := srcStore.fs.ReadFile(path)
	if err != nil {
		return stats, dur, err
	}
	stats.BytesLogical = content.Len()
	link := f.linkLocked(src, dst)
	if fault := f.fire("chunk"); fault != nil && fault.Kind == faultinject.Crash {
		f.markDeadLocked(dst, dstStore)
		return stats, dur, fmt.Errorf("%w: %s crashed mid-ship of %s", ErrHostDead, dst, path)
	}
	if dstStore.fs.Exists(path) {
		have, d, err := dstStore.fs.ReadFile(path)
		dur += d
		if err == nil && blob.Equal(have, content) {
			// Digest exchange instead of bytes.
			dur += link.cost(64)
			stats.ChunksDeduped = 1
			f.chunksDeduped.Inc()
			return stats, dur, nil
		}
	}
	dur += link.cost(content.Len())
	d, err := dstStore.fs.WriteFile(path, content)
	dur += d
	if err != nil {
		return stats, dur, err
	}
	stats.ChunksShipped = 1
	stats.BytesShipped = content.Len()
	f.chunksShipped.Inc()
	f.bytesShipped.Add(content.Len())
	return stats, dur, nil
}

// ShipDir moves a whole snapshot directory — its plain host files and
// its store-resident snapshots — from src to dst.
func (f *Federation) ShipDir(src, dst, dir string) (ShipStats, simclock.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shipDirLocked(src, dst, dir)
}

func (f *Federation) shipDirLocked(src, dst, dir string) (ShipStats, simclock.Duration, error) {
	var stats ShipStats
	var dur simclock.Duration
	srcStore, err := f.storeLocked(src)
	if err != nil {
		return stats, 0, err
	}
	dir = normPath(dir)
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for _, p := range srcStore.fs.List(prefix) {
		s, d, err := f.shipFileLocked(src, dst, p)
		stats.add(s)
		dur += d
		if err != nil {
			return stats, dur, err
		}
	}
	for _, p := range srcStore.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		s, d, err := f.shipSnapshotLocked(src, dst, p)
		stats.add(s)
		dur += d
		if err != nil {
			return stats, dur, err
		}
	}
	return stats, dur, nil
}

// placementLocked orders the living members other than src as
// replication candidates, rotated by a hash of dir so different
// directories spread across the fleet deterministically.
func (f *Federation) placementLocked(src, dir string) []string {
	var cands []string
	for _, n := range f.aliveLocked() {
		if n != src {
			cands = append(cands, n)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	h := fnv.New32a()
	h.Write([]byte(dir))
	off := int(h.Sum32()) % len(cands)
	if off < 0 {
		off += len(cands)
	}
	return append(cands[off:], cands[:off]...)
}

// ReplicateDir establishes k total copies of the snapshot directory dir
// (the copy on src counts). Placement is deterministic. If a
// destination dies mid-ship the error surfaces, but every completed
// copy is recorded — a subsequent Repair tops the set back up to k.
func (f *Federation) ReplicateDir(src, dir string, k int) ([]string, simclock.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k < 1 {
		return nil, 0, fmt.Errorf("snapstore: replicate %s: k=%d, want >= 1", dir, k)
	}
	if _, err := f.storeLocked(src); err != nil {
		return nil, 0, err
	}
	dir = normPath(dir)
	set := f.sets[dir]
	if set == nil {
		set = &replicaSet{dir: dir, holders: []string{src}}
		f.sets[dir] = set
	}
	set.k = k
	if !contains(set.holders, src) {
		set.holders = append(set.holders, src)
		sort.Strings(set.holders)
	}
	var dur simclock.Duration
	for _, dst := range f.placementLocked(src, dir) {
		if f.holdersAliveLocked(set) >= k {
			break
		}
		if contains(set.holders, dst) {
			continue
		}
		_, d, err := f.shipDirLocked(src, dst, dir)
		dur += d
		if err != nil {
			return f.holdersLocked(dir), dur, err
		}
		set.holders = append(set.holders, dst)
		sort.Strings(set.holders)
	}
	if f.holdersAliveLocked(set) < k {
		return f.holdersLocked(dir), dur, fmt.Errorf("snapstore: replicate %s: only %d of %d replicas placed (fleet too small or hosts dead)", dir, f.holdersAliveLocked(set), k)
	}
	return f.holdersLocked(dir), dur, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func (f *Federation) holdersAliveLocked(set *replicaSet) int {
	n := 0
	for _, h := range set.holders {
		if !f.dead[h] {
			n++
		}
	}
	return n
}

// Holders returns the living members holding a full copy of dir,
// sorted. Empty when dir was never replicated or every holder is dead.
func (f *Federation) Holders(dir string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.holdersLocked(normPath(dir))
}

func (f *Federation) holdersLocked(dir string) []string {
	set := f.sets[dir]
	if set == nil {
		return nil
	}
	var out []string
	for _, h := range set.holders {
		if !f.dead[h] {
			out = append(out, h)
		}
	}
	return out
}

// ReplicaLag counts replica sets whose living copies are below their
// target k — the number Repair would fix.
func (f *Federation) ReplicaLag() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, set := range f.sets {
		if f.holdersAliveLocked(set) < set.k {
			n++
		}
	}
	return n
}

// RepairStats reports one repair pass.
type RepairStats struct {
	SetsChecked   int
	ReplicasAdded int
	SetsLost      int // sets with no living holder — unrecoverable
}

// Repair re-establishes every replica set's target k after host deaths:
// for each set below target, it ships dir from a surviving holder to
// new hosts. Idempotent and re-runnable — an injected crash mid-pass
// (SiteFederation, key "repair") abandons the pass with ErrInterrupted
// and a re-run converges; sets with no surviving holder are counted
// lost, never silently dropped. The pass is traced as a fed_repair span
// at virtual time at.
func (f *Federation) Repair(at simclock.Duration) (RepairStats, simclock.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var rs RepairStats
	var dur simclock.Duration
	var passErr error
	sp := f.obs.TracerOf().Track("host", "federation").BeginAt(0, "fed_repair", at, nil)
	defer func() {
		sp.SetArg("sets_checked", int64(rs.SetsChecked))
		sp.SetArg("replicas_added", int64(rs.ReplicasAdded))
		sp.SetArg("sets_lost", int64(rs.SetsLost))
		sp.EndAt(at + dur)
	}()
	dirs := make([]string, 0, len(f.sets))
	for dir := range f.sets {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
pass:
	for _, dir := range dirs {
		set := f.sets[dir]
		rs.SetsChecked++
		alive := f.holdersLocked(dir)
		if len(alive) == 0 {
			rs.SetsLost++
			continue
		}
		for _, dst := range f.placementLocked(alive[0], dir) {
			if f.holdersAliveLocked(set) >= set.k {
				break
			}
			if contains(set.holders, dst) {
				continue
			}
			if fault := f.fire("repair"); fault != nil && fault.Kind == faultinject.Crash {
				passErr = fmt.Errorf("%w: repair pass after %d replicas", ErrInterrupted, rs.ReplicasAdded)
				break pass
			}
			_, d, err := f.shipDirLocked(alive[0], dst, dir)
			dur += d
			if err != nil {
				// The destination died mid-ship (or the link failed); try
				// the next candidate. Chunks already landed are reused by
				// the retry or swept by the destination's GC.
				continue
			}
			set.holders = append(set.holders, dst)
			sort.Strings(set.holders)
			rs.ReplicasAdded++
			f.repairs.Inc()
		}
	}
	return rs, dur, passErr
}

// Forget drops the replica-set record for dir (the snapshot was
// released everywhere; its copies are now subject to each host's GC).
func (f *Federation) Forget(dir string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.sets, normPath(dir))
}
