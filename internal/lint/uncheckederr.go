package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedErr reports discarded errors from module-defined functions.
// Snapify's pause/capture/resume protocol (HPDC 2014, §4) propagates
// failures as error returns all the way from the SCIF layer to the host
// API; a silently dropped error on those paths turns a recoverable
// protocol failure into a hung or corrupted snapshot. The rule is scoped
// to callees defined in this module so that conventional stdlib patterns
// (fmt printing, buffer writes) stay out of scope.
var UncheckedErr = &Analyzer{
	Name: "errcheck",
	Doc:  "errors returned on snapshot/restore/SCIF paths must be handled, not discarded",
	Run:  runUncheckedErr,
}

func runUncheckedErr(p *Pass) {
	info := p.Pkg.Info
	report := func(call *ast.CallExpr, how string) {
		f := calleeFunc(info, call)
		p.Reportf(call.Pos(), "error result of %s is %s", funcDisplayName(f), how)
	}
	inspectFiles(p, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok && discardsModuleError(info, call) {
				report(call, "discarded by the bare call")
			}
		case *ast.GoStmt:
			if discardsModuleError(info, stmt.Call) {
				report(stmt.Call, "discarded by the go statement")
			}
		case *ast.DeferStmt:
			if discardsModuleError(info, stmt.Call) {
				report(stmt.Call, "discarded by the deferred call")
			}
		case *ast.AssignStmt:
			checkBlankAssign(p, stmt)
		}
		return true
	})
}

// discardsModuleError reports whether call returns at least one error
// from a module-defined callee (the statement forms above discard every
// result).
func discardsModuleError(info *types.Info, call *ast.CallExpr) bool {
	if !isModuleFunc(calleeFunc(info, call)) {
		return false
	}
	return len(errorResults(info, call)) > 0
}

// checkBlankAssign flags error results explicitly assigned to the blank
// identifier, e.g. `_ = ep.Close()` or `msg, _ := pipe.Recv()` where the
// blank slot is the error.
func checkBlankAssign(p *Pass, stmt *ast.AssignStmt) {
	info := p.Pkg.Info
	// Single call on the right: LHS positions map to the call's results.
	if len(stmt.Rhs) == 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok || !isModuleFunc(calleeFunc(info, call)) {
			return
		}
		errIdx := errorResults(info, call)
		for _, i := range errIdx {
			if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
				p.Reportf(stmt.Lhs[i].Pos(), "error result of %s is assigned to _",
					funcDisplayName(calleeFunc(info, call)))
			}
		}
		return
	}
	// Parallel assignment: each RHS pairs with one LHS.
	for i, rhs := range stmt.Rhs {
		if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isModuleFunc(calleeFunc(info, call)) {
			continue
		}
		if len(errorResults(info, call)) > 0 {
			p.Reportf(stmt.Lhs[i].Pos(), "error result of %s is assigned to _",
				funcDisplayName(calleeFunc(info, call)))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
