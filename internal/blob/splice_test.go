package blob

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpliceBasic(t *testing.T) {
	base := FromBytes([]byte("0123456789"))
	out := Splice(base, 3, FromBytes([]byte("ABC")))
	if got := string(out.Bytes()); got != "012ABC6789" {
		t.Fatalf("splice = %q", got)
	}
	// Whole replacement and edges.
	if got := string(Splice(base, 0, FromBytes([]byte("XXXXXXXXXX"))).Bytes()); got != "XXXXXXXXXX" {
		t.Fatalf("full splice = %q", got)
	}
	if got := string(Splice(base, 8, FromBytes([]byte("YZ"))).Bytes()); got != "01234567YZ" {
		t.Fatalf("tail splice = %q", got)
	}
	if got := string(Splice(base, 4, Blob{}).Bytes()); got != "0123456789" {
		t.Fatalf("empty splice = %q", got)
	}
}

func TestSpliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Splice(Zeros(5), 3, Zeros(3))
}

func TestSplicePreservesSyntheticExtents(t *testing.T) {
	base := Synthetic(9, 1<<20)
	out := Splice(base, 1000, FromBytes(make([]byte, 64)))
	if out.LiteralBytes() != 64 {
		t.Errorf("literal bytes = %d, want 64 (background must stay synthetic)", out.LiteralBytes())
	}
}

func TestSpliceQuickAgainstCopy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ref := make([]byte, 1+r.Intn(4096))
		r.Read(ref)
		b := FromBytes(ref)
		for i := 0; i < 10; i++ {
			off := r.Int63n(int64(len(ref)) + 1)
			n := r.Int63n(int64(len(ref)) - off + 1)
			patch := make([]byte, n)
			r.Read(patch)
			b = Splice(b, off, FromBytes(patch))
			copy(ref[off:off+n], patch)
		}
		return bytes.Equal(b.Bytes(), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
