package scif

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/simnet"
)

// TestManyConnectionsInterleaved stresses the namespace: many concurrent
// connections between random node pairs, each carrying ordered sequences,
// all delivered exactly once and in order.
func TestManyConnectionsInterleaved(t *testing.T) {
	n := newTestNetwork(t, 3)
	const conns = 24
	const msgs = 60

	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			server := 1 + r.Intn(3)
			l, err := n.Listen(simnet.NodeID(server), 0)
			if err != nil {
				t.Error(err)
				return
			}
			defer l.Close()

			done := make(chan struct{})
			go func() {
				defer close(done)
				ep, err := l.Accept()
				if err != nil {
					t.Error(err)
					return
				}
				defer ep.Close()
				for i := 0; i < msgs; i++ {
					msg, _, err := ep.Recv()
					if err != nil {
						t.Error(err)
						return
					}
					if got := binary.BigEndian.Uint32(msg); got != uint32(i) {
						t.Errorf("conn %d: message %d arrived as %d", c, i, got)
						return
					}
				}
			}()

			client, err := n.Connect(0, l.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer client.Close()
			buf := make([]byte, 4)
			for i := 0; i < msgs; i++ {
				binary.BigEndian.PutUint32(buf, uint32(i))
				if _, err := client.Send(buf); err != nil {
					t.Error(err)
					return
				}
			}
			<-done
		}(c)
	}
	wg.Wait()
}

// TestRDMAConcurrentWindows registers many windows and drives concurrent
// transfers against them; contents never bleed between windows.
func TestRDMAConcurrentWindows(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)

	const windows = 8
	mems := make([]*blob.Buffer, windows)
	offs := make([]int64, windows)
	for i := 0; i < windows; i++ {
		mems[i] = blob.NewBuffer(1<<16, uint64(i+1))
		w, _, err := s.Register(mems[i], 0, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		offs[i] = w.Offset
	}

	var wg sync.WaitGroup
	for i := 0; i < windows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local := blob.NewBuffer(1<<16, 0)
			pattern := make([]byte, 1024)
			for j := range pattern {
				pattern[j] = byte(i*31 + j)
			}
			local.WriteAt(pattern, 0)
			for round := 0; round < 20; round++ {
				if _, err := c.VWriteTo(local, 0, 1024, offs[i]+int64(round)*1024); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < windows; i++ {
		got := make([]byte, 1024)
		for round := 0; round < 20; round++ {
			mems[i].ReadAt(got, int64(round)*1024)
			for j := range got {
				if got[j] != byte(i*31+j) {
					t.Fatalf("window %d round %d byte %d: cross-window bleed", i, round, j)
				}
			}
		}
	}
}
