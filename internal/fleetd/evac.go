package fleetd

// Evacuation waves and whole-host failure. An evacuation drains every
// job off a host under a deadline: resident jobs move by live pre-copy
// migration, swapped-out jobs re-materialize from their replicated
// snapshots, and at most EvacWave moves run concurrently per wave. A
// host kill is the involuntary version — jobs with replicated
// snapshots recover onto the closest holders, the rest restart from
// scratch.

import (
	"errors"
	"fmt"
	"sort"

	"snapify/internal/simclock"
	"snapify/internal/snapstore"
)

// EvacReport summarizes one host evacuation.
type EvacReport struct {
	Host        string
	Moved       int
	Waves       int
	Done        bool
	DeadlineMet bool
}

// Evacuations returns the report of every drain started so far, in
// start order.
func (c *Controller) Evacuations() []EvacReport {
	var out []EvacReport
	for _, name := range c.drained {
		h, err := c.hostByName(name)
		if err != nil || h.drain == nil {
			continue
		}
		out = append(out, EvacReport{
			Host: name, Moved: h.drain.moved, Waves: h.drain.waves,
			Done: h.drain.done, DeadlineMet: h.drain.met,
		})
	}
	return out
}

// ScheduleEvacuation arranges for host to start draining at virtual
// time `at`, finishing by `deadline`.
func (c *Controller) ScheduleEvacuation(at simclock.Duration, host string, deadline simclock.Duration) {
	c.seq++
	c.controls[c.seq] = controlPayload{host: host, deadline: deadline}
	c.events.Push(event{at: at, seq: c.seq, kind: evEvacuate})
}

// ScheduleKillHost arranges for host to fail at virtual time `at`.
func (c *Controller) ScheduleKillHost(at simclock.Duration, host string) {
	c.seq++
	c.controls[c.seq] = controlPayload{host: host, kill: true}
	c.events.Push(event{at: at, seq: c.seq, kind: evEvacuate})
}

// startDrain begins the evacuation of host.
func (c *Controller) startDrain(name string, deadline simclock.Duration) error {
	h, err := c.hostByName(name)
	if err != nil {
		return err
	}
	if h.dead {
		return fmt.Errorf("fleetd: evacuating dead host %s", name)
	}
	if h.draining {
		return fmt.Errorf("fleetd: host %s is already draining", name)
	}
	h.draining = true
	ids := make([]int, 0, len(h.assigned))
	for id := range h.assigned {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h.drain = &drainState{deadline: deadline, remaining: ids}
	c.drained = append(c.drained, name)
	if len(ids) == 0 {
		h.drain.done = true
		h.drain.met = c.now <= deadline
		return nil
	}
	return c.pumpDrain(h)
}

// pumpDrain starts evacuation moves until the wave is full. Jobs in a
// transient op (launching, swapping) rotate to the back of the queue
// and are picked up stabilized; if a pass starts nothing while nothing
// is in flight, the drain parks until dispatch re-pumps it after the
// next event. A pump that starts the first moves of an empty wave
// counts as a new wave.
func (c *Controller) pumpDrain(h *hostState) error {
	d := h.drain
	wave := c.opts.evacWave()
	fresh := d.inflight == 0
	started := 0
	// Each entry gets one look per pump; rotated entries wait for the
	// next one, bounding the pass.
	for looks := len(d.remaining); looks > 0 && d.inflight < wave && len(d.remaining) > 0; looks-- {
		id := d.remaining[0]
		d.remaining = d.remaining[1:]
		j := c.jobs[id]
		if j == nil || j.Done() || j.Host != h.name {
			continue
		}
		switch j.State {
		case StateRunning, StateThinking, StateSwappedOut:
			before := d.inflight
			if err := c.startEvacMove(h, j); err != nil {
				return err
			}
			if d.inflight > before {
				started++
			}
		default:
			// Mid-op: rotate to the back and let it stabilize.
			d.remaining = append(d.remaining, id)
		}
	}
	if fresh && started > 0 {
		d.waves++
		c.stats.EvacWaves++
	}
	if d.inflight == 0 && len(d.remaining) == 0 && !d.done {
		d.done = true
		d.met = c.now <= d.deadline
	}
	return nil
}

// startEvacMove moves one job off the draining host: live pre-copy for
// resident jobs, snapshot re-placement for swapped-out ones. When no
// destination exists (fleet full, or the chosen one died mid-ship) the
// job rotates to the back of the queue without starting.
func (c *Controller) startEvacMove(h *hostState, j *Job) error {
	// An evacuation move lands resident, so the destination needs
	// physical room, not just commit headroom.
	dst := c.findCard(j, true)
	if dst == nil {
		// Fleet full elsewhere: park the job at the back; capacity may
		// free before the deadline.
		h.drain.remaining = append(h.drain.remaining, j.ID)
		return nil
	}
	dstHost := c.hosts[dst.hostIdx]
	// Reserve the destination before the bytes move.
	dst.committed += j.Spec.Footprint
	dst.resident += j.Spec.Footprint
	j.opDstHost, j.opDstCard = dstHost.name, dst.idx
	j.epoch++ // cancel scheduled burst/think ends; they resume on landing

	var dur simclock.Duration
	var err error
	if j.State == StateSwappedOut {
		dur, err = c.be.Recover(j, dstHost.name, dst.idx)
	} else {
		dur, err = c.be.Migrate(j, dstHost.name, dst.idx)
	}
	if err != nil {
		// Undo the reservation; the job is untouched on the source (the
		// ship failed before the switch-over).
		dst.committed -= j.Spec.Footprint
		dst.resident -= j.Spec.Footprint
		j.opDstHost, j.opDstCard = "", 0
		c.stats.EvacFails++
		if errors.Is(err, snapstore.ErrHostDead) {
			// The destination died mid-ship: mark it dead fleet-wide and
			// let the next pump re-route to a living host.
			if derr := c.markHostDead(dstHost.name); derr != nil {
				return derr
			}
			c.resumeOnSource(j)
			h.drain.remaining = append(h.drain.remaining, j.ID)
			return nil
		}
		return fmt.Errorf("fleetd: evacuating job %d off %s: %w", j.ID, h.name, err)
	}
	h.drain.inflight++
	c.startOp(j, opMigrate, dur, dst)
	return nil
}

// resumeOnSource puts an evacuation-interrupted job back into its
// normal lifecycle on its current host. The move's epoch bump canceled
// the job's scheduled future, so it is rebuilt here. The pre-move state
// cannot be read off j.State (an in-flight move overwrote it with
// StateMigrating): residency on the source card is the ground truth —
// a job absent from it was swapped out before the move and still is.
func (c *Controller) resumeOnSource(j *Job) {
	h, err := c.hostByName(j.Host)
	if err != nil {
		return
	}
	cd := h.cards[j.Card]
	if _, resident := cd.residents[j.ID]; !resident {
		// Still a snapshot; nothing was moving on the card. Re-raise the
		// burst trigger the move canceled: the waiter entry when its
		// burst is already due, the think end otherwise.
		j.State = StateSwappedOut
		if j.wantsBurst {
			queued := false
			for _, id := range cd.waiters {
				if id == j.ID {
					queued = true
					break
				}
			}
			if !queued {
				cd.waiters = append(cd.waiters, j.ID)
			}
		} else {
			at := j.thinkEndAt
			if at < c.now {
				at = c.now
			}
			c.schedule(at, evThinkEnd, j)
		}
		return
	}
	j.State = StateThinking
	// Its think clock kept running during the failed move.
	if j.thinkEndAt > c.now {
		c.schedule(j.thinkEndAt, evThinkEnd, j)
	} else {
		c.schedule(c.now, evThinkEnd, j)
	}
}

// migrateDone lands an evacuation move on its destination.
func (c *Controller) migrateDone(j *Job) error {
	srcName := j.Host
	src, err := c.hostByName(srcName)
	if err != nil {
		return err
	}
	dstHost, err := c.hostByName(j.opDstHost)
	if err != nil {
		return err
	}
	dst := dstHost.cards[j.opDstCard]
	if dstHost.dead {
		// The destination died while the bytes were in flight (model
		// mode): the switch-over never happened, the job lives on.
		c.stats.EvacFails++
		c.resumeOnSource(j)
		if src.drain != nil {
			src.drain.inflight--
			src.drain.remaining = append(src.drain.remaining, j.ID)
		}
		j.opDstHost, j.opDstCard = "", 0
		return c.drainStep(src)
	}
	// Release the source.
	wasResident := true
	if cd := src.cards[j.Card]; cd != nil {
		cd.committed -= j.Spec.Footprint
		if _, ok := cd.residents[j.ID]; ok {
			cd.resident -= j.Spec.Footprint
			delete(cd.residents, j.ID)
		} else {
			wasResident = false
		}
		c.serveWaiters(cd)
	}
	delete(src.assigned, j.ID)
	// Land on the destination (reserved at move start).
	j.Host, j.Card = dstHost.name, dst.idx
	dst.residents[j.ID] = j
	dstHost.assigned[j.ID] = j
	j.snapshotted = true
	j.ckptBursts = j.burstsDone
	c.stats.EvacMoves++
	c.mEvacMoves.Inc()
	if src.drain != nil {
		src.drain.inflight--
		src.drain.moved++
	}
	// Resume the job's lifecycle on the new card.
	if !wasResident || j.wantsBurst || j.thinkEndAt <= c.now {
		if err := c.startBurst(j); err != nil {
			return err
		}
	} else {
		j.State = StateThinking
		c.schedule(j.thinkEndAt, evThinkEnd, j)
	}
	return c.drainStep(src)
}

// drainStep advances the wave machinery after one move resolved: when
// the whole wave has landed, the next one fills.
func (c *Controller) drainStep(src *hostState) error {
	d := src.drain
	if d == nil {
		return nil
	}
	if d.inflight == 0 && len(d.remaining) > 0 {
		return c.pumpDrain(src)
	}
	if d.inflight == 0 && len(d.remaining) == 0 && !d.done {
		d.done = true
		d.met = c.now <= d.deadline
	}
	return nil
}

// dropFromDrain removes a job that no longer needs moving (it
// completed) from the host's drain queue.
func (c *Controller) dropFromDrain(h *hostState, id int) {
	d := h.drain
	if d == nil {
		return
	}
	for i, r := range d.remaining {
		if r == id {
			d.remaining = append(d.remaining[:i], d.remaining[i+1:]...)
			break
		}
	}
	if d.inflight == 0 && len(d.remaining) == 0 && !d.done {
		d.done = true
		d.met = c.now <= d.deadline
	}
}

// KillHost fails a host immediately: every job assigned there is lost.
// Jobs with a replicated snapshot requeue and recover from their
// closest holder through placement's locality scoring; the rest
// restart from scratch.
func (c *Controller) KillHost(name string) error {
	if err := c.markHostDead(name); err != nil {
		return err
	}
	return c.dispatch()
}

func (c *Controller) markHostDead(name string) error {
	h, err := c.hostByName(name)
	if err != nil {
		return err
	}
	if h.dead {
		return nil
	}
	h.dead = true
	h.draining = false
	if h.drain != nil && !h.drain.done {
		h.drain.done = true
		h.drain.met = false
	}
	c.be.HostKilled(name)
	ids := make([]int, 0, len(h.assigned))
	for id := range h.assigned {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		j := c.jobs[id]
		c.stats.JobsLost++
		c.mLost.Inc()
		j.epoch++ // cancel everything scheduled for it
		if j.curOp == opMigrate && j.opDstHost != "" && j.opDstHost != name {
			// Its escape was in flight; the source died first. Undo the
			// destination reservation — the switch-over never happened.
			if dh, derr := c.hostByName(j.opDstHost); derr == nil && !dh.dead {
				dc := dh.cards[j.opDstCard]
				dc.committed -= j.Spec.Footprint
				dc.resident -= j.Spec.Footprint
			}
		}
		if j.curOp == opSwapOut && j.opPreempt {
			// The victim died mid-eviction: its swap-out completion is now
			// stale and will never decrement the preemptor's in-flight
			// count, so release the preemptor here or it blocks the
			// admission queue head-of-line forever.
			if p := c.jobs[j.preemptFor]; p != nil && p.preemptEvicts > 0 {
				p.preemptEvicts--
			}
		}
		j.curOp = opNone
		j.opPreempt = false
		j.opDstHost, j.opDstCard = "", 0
		j.Host, j.Card = "", -1
		j.wantsBurst = false
		j.beingPreempted = false
		j.preemptFor = 0
		j.launched = false
		if j.snapshotted {
			c.stats.Recovered++
		} else {
			j.burstsDone = 0
			j.ckptBursts = 0
			c.stats.Restarted++
		}
		j.State = StatePending
		j.enqueuedAt = c.now
		c.tenantQueued[j.Spec.Tenant]++
		c.pending.Push(j)
	}
	h.assigned = make(map[int]*Job)
	for _, cd := range h.cards {
		cd.committed, cd.resident = 0, 0
		cd.residents = make(map[int]*Job)
		cd.waiters = nil
		cd.retries = 0
		cd.busyUntil = c.now
	}
	// Jobs elsewhere migrating INTO the dead host fail their landing in
	// migrateDone (dstHost.dead check); nothing to do here.
	return nil
}

// CheckpointJob captures a durable replicated snapshot of a resident
// job without stopping it for long — the fault-tolerance premium. The
// card engine is busy for the capture duration.
func (c *Controller) CheckpointJob(id int) error {
	j := c.jobs[id]
	if j == nil {
		return fmt.Errorf("fleetd: no job %d", id)
	}
	if j.State != StateRunning && j.State != StateThinking {
		return fmt.Errorf("fleetd: checkpointing job %d in state %s", id, j.State)
	}
	h, err := c.hostByName(j.Host)
	if err != nil {
		return err
	}
	dur, err := c.be.Checkpoint(j)
	if err != nil {
		return fmt.Errorf("fleetd: checkpointing job %d: %w", id, err)
	}
	cd := h.cards[j.Card]
	if cd.busyUntil < c.now {
		cd.busyUntil = c.now
	}
	cd.busyUntil += dur
	j.snapshotted = true
	j.ckptBursts = j.burstsDone
	return nil
}
