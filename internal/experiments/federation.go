package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"snapify/internal/coi"
	"snapify/internal/obs"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/sched"
	"snapify/internal/simclock"
	"snapify/internal/snapstore"
	"snapify/internal/trace"
	"snapify/internal/workloads"
)

// FederationImageBytes is the default device image of the federation
// benchmark. As with the dedup-swap benchmark the object of study is a
// ratio — bytes shipped cold vs warm across hosts — which is
// size-independent once the image dwarfs one chunk.
const FederationImageBytes = 512 * simclock.MiB

// FederationHosts and FederationLegs are the default fleet size and
// migration leg count. The job ping-pongs between the first two hosts,
// so every leg after the first arrives at a store that already holds
// the previous visit's chunks; the third host exists for the
// replication and repair phase.
const (
	FederationHosts = 3
	FederationLegs  = 4
)

// federationReplicas is the copy count of the host-kill phase.
const federationReplicas = 2

// FederationLeg is one cross-host migration's ship accounting.
type FederationLeg struct {
	Leg  int    `json:"leg"`
	From string `json:"from"`
	To   string `json:"to"`
	// BytesLogical is the full snapshot directory size the leg moved;
	// BytesShipped is what actually crossed the wire after the
	// destination store's have/need negotiation.
	BytesLogical  int64 `json:"bytes_logical"`
	BytesShipped  int64 `json:"bytes_shipped"`
	ChunksShipped int64 `json:"chunks_shipped"`
	ChunksDeduped int64 `json:"chunks_deduped"`
}

// FederationResult is the full federation benchmark document.
type FederationResult struct {
	Benchmark  string          `json:"benchmark"`
	ImageBytes int64           `json:"image_bytes"`
	Hosts      int             `json:"hosts"`
	Legs       int             `json:"legs"`
	Rows       []FederationLeg `json:"rows"`

	// ColdShippedBytes is the first leg's wire bytes (empty destination
	// store: everything ships). Warm totals cover every later leg.
	ColdShippedBytes int64 `json:"cold_shipped_bytes"`
	WarmLogicalBytes int64 `json:"warm_logical_bytes"`
	WarmShippedBytes int64 `json:"warm_shipped_bytes"`
	// CrossHostDedupX is WarmLogicalBytes / WarmShippedBytes — the
	// headline federation win (acceptance floor 2x).
	CrossHostDedupX float64 `json:"cross_host_dedup_x"`

	// Host-kill recovery phase: the job checkpoints with k-way
	// replication, its host dies, Recover restarts it from a replica.
	Replicas       int `json:"replicas"`
	ReplicaHolders int `json:"replica_holders"`
	LagAfterKill   int `json:"replica_lag_after_kill"`
	RepairAdded    int `json:"repair_replicas_added"`
	LagAfterRepair int `json:"replica_lag_after_repair"`
	RecoveredJobs  int `json:"recovered_jobs"`
	// ByteIdentical reports that the recovered host's context manifest
	// lists exactly the chunk digests the dead host committed.
	ByteIdentical bool `json:"byte_identical"`
	// ChecksumMatch reports that the recovered job ran to completion
	// with the same checksum as an uninterrupted reference run.
	ChecksumMatch bool `json:"checksum_match"`
	// FsckProblems totals store Verify findings across surviving hosts.
	FsckProblems int `json:"fsck_problems"`

	WallTotalNs int64 `json:"wall_total_ns"`
}

// FederationBench migrates one offload job across a fleet of hosts
// through the store federation, then kills the job's host and recovers
// it from a replica. The first migration ships the whole image; every
// later leg negotiates against a destination store that already holds
// the previous visit's chunks and ships only the dirtied working set —
// the cross-host analogue of the dedup-swap benchmark. The kill phase
// measures the repair loop and the restart-from-replica contract.
func FederationBench(imageBytes int64, hosts, legs int) (*FederationResult, error) {
	if hosts < 3 {
		return nil, fmt.Errorf("federation: need >= 3 hosts (migration pair + repair target), got %d", hosts)
	}
	if legs < 2 {
		return nil, fmt.Errorf("federation: need >= 2 legs to measure warm shipping, got %d", legs)
	}

	wall := simclock.StartWall()
	fleet := sched.NewFleet(obs.New(), snapstore.DefaultLink(), nil)
	names := make([]string, hosts)
	for i := 0; i < hosts; i++ {
		names[i] = fmt.Sprintf("h%d", i)
		plat, err := platform.New(platform.Config{Server: phi.ServerConfig{
			Devices: 1,
			Device:  phi.DeviceConfig{MemBytes: imageBytes + 2*simclock.GiB},
		}})
		if err != nil {
			return nil, err
		}
		if err := coi.StartDaemons(plat); err != nil {
			return nil, err
		}
		defer coi.StopDaemons(plat)
		defer plat.IO.Stop()
		if err := fleet.AddHost(names[i], plat); err != nil {
			return nil, err
		}
	}
	fleet.Capture.Streams = 2
	fleet.Capture.ChunkBytes = 256 * 1024
	fleet.Capture.Store.Enabled = true
	fleet.Restore.Store.Enabled = true

	// The kernel folds freshly written input each call (In/OutPerCall
	// nonzero), so the checksum depends only on the deterministic call
	// sequence — comparable across platforms and restarts.
	spec := workloads.Spec{
		Code: "FD", Name: "federation migration legs",
		HostMem:        16 * simclock.MiB,
		DeviceMem:      imageBytes,
		LocalStore:     4 * simclock.MiB,
		Calls:          legs + 4,
		StepsPerCall:   2,
		ComputePerCall: time.Millisecond,
		InPerCall:      16 * simclock.KiB,
		OutPerCall:     16 * simclock.KiB,
	}

	// Uninterrupted reference for the final checksum comparison.
	want, err := func() (uint64, error) {
		plat, err := platform.New(platform.Config{Server: phi.ServerConfig{
			Devices: 1,
			Device:  phi.DeviceConfig{MemBytes: imageBytes + 2*simclock.GiB},
		}})
		if err != nil {
			return 0, err
		}
		defer plat.IO.Stop()
		if err := coi.StartDaemons(plat); err != nil {
			return 0, err
		}
		defer coi.StopDaemons(plat)
		in, err := workloads.Launch(plat, spec, 1)
		if err != nil {
			return 0, err
		}
		defer in.Close()
		return in.Run()
	}()
	if err != nil {
		return nil, fmt.Errorf("federation: reference run: %w", err)
	}

	res := &FederationResult{
		Benchmark: "federation", ImageBytes: imageBytes,
		Hosts: hosts, Legs: legs, Replicas: federationReplicas,
	}

	j, err := fleet.Submit(spec, names[0], 1)
	if err != nil {
		return nil, err
	}
	if _, err := j.Inst.RunCalls(2); err != nil {
		return nil, err
	}

	// Migration phase: ping-pong between the first two hosts, one
	// offload call of dirtying between legs.
	for leg := 0; leg < legs; leg++ {
		from := j.Host
		to := names[0]
		if from == names[0] {
			to = names[1]
		}
		stats, err := fleet.MigrateJob(j, to)
		if err != nil {
			return nil, fmt.Errorf("federation: leg %d (%s -> %s): %w", leg, from, to, err)
		}
		row := FederationLeg{
			Leg: leg, From: from, To: to,
			BytesLogical:  stats.BytesLogical,
			BytesShipped:  stats.BytesShipped,
			ChunksShipped: stats.ChunksShipped,
			ChunksDeduped: stats.ChunksDeduped,
		}
		res.Rows = append(res.Rows, row)
		if leg == 0 {
			res.ColdShippedBytes = row.BytesShipped
		} else {
			res.WarmLogicalBytes += row.BytesLogical
			res.WarmShippedBytes += row.BytesShipped
		}
		if _, err := j.Inst.RunCalls(1); err != nil {
			return nil, err
		}
	}
	if res.WarmShippedBytes > 0 {
		res.CrossHostDedupX = float64(res.WarmLogicalBytes) / float64(res.WarmShippedBytes)
	}

	// Kill phase: replicate the checkpoint, lose the host, recover.
	fleet.Capture.Store.Replicas = federationReplicas
	_, holders, err := fleet.Checkpoint(j)
	if err != nil {
		return nil, fmt.Errorf("federation: replicated checkpoint: %w", err)
	}
	res.ReplicaHolders = len(holders)
	doomed := j.Host
	before, err := ctxManifestDigests(fleet, doomed, j)
	if err != nil {
		return nil, err
	}
	if err := fleet.KillHost(doomed); err != nil {
		return nil, err
	}
	res.LagAfterKill = fleet.Federation().ReplicaLag()
	repair, _, err := fleet.Federation().Repair(0)
	if err != nil {
		return nil, fmt.Errorf("federation: repair: %w", err)
	}
	res.RepairAdded = repair.ReplicasAdded
	res.LagAfterRepair = fleet.Federation().ReplicaLag()

	recovered, err := fleet.Recover()
	if err != nil {
		return nil, fmt.Errorf("federation: recover: %w", err)
	}
	res.RecoveredJobs = len(recovered)
	after, err := ctxManifestDigests(fleet, j.Host, j)
	if err != nil {
		return nil, err
	}
	res.ByteIdentical = strings.Join(before, ",") == strings.Join(after, ",")

	if err := fleet.Run(); err != nil {
		return nil, fmt.Errorf("federation: running recovered job: %w", err)
	}
	res.ChecksumMatch = j.Inst.Checksum() == want

	for _, name := range fleet.Federation().Members() {
		if !fleet.Federation().Alive(name) {
			continue
		}
		st, err := fleet.Federation().StoreOf(name)
		if err != nil {
			return nil, err
		}
		problems, _ := st.Verify()
		res.FsckProblems += len(problems)
	}
	res.WallTotalNs = wall.ElapsedNs()
	return res, nil
}

// ctxManifestDigests reads the chunk digest list of the job's offload
// context manifest in the named member's store.
func ctxManifestDigests(f *sched.Fleet, host string, j *sched.FleetJob) ([]string, error) {
	st, err := f.Federation().StoreOf(host)
	if err != nil {
		return nil, err
	}
	m, _, err := st.Manifest(j.Dir + "/" + coi.ContextFileName)
	if err != nil {
		return nil, fmt.Errorf("federation: context manifest of job %d on %s: %w", j.ID, host, err)
	}
	return m.Chunks, nil
}

// Render prints the benchmark in the tables' layout.
func (r *FederationResult) Render() string {
	t := trace.New(fmt.Sprintf("Federation: %s image migrating across %d hosts, %d legs, then host kill + k=%d recovery",
		sizeLabel(r.ImageBytes), r.Hosts, r.Legs, r.Replicas),
		"Leg", "Route", "Logical (MiB)", "Shipped (MiB)", "Chunks ship/dedup")
	for _, row := range r.Rows {
		t.Row(fmt.Sprintf("%d", row.Leg),
			fmt.Sprintf("%s->%s", row.From, row.To),
			fmt.Sprintf("%d", row.BytesLogical/simclock.MiB),
			fmt.Sprintf("%d", row.BytesShipped/simclock.MiB),
			fmt.Sprintf("%d/%d", row.ChunksShipped, row.ChunksDeduped))
	}
	return t.String() + fmt.Sprintf("\nwarm legs: %d MiB logical, %d MiB shipped — %.1fx cross-host dedup\nhost kill: %d holders, lag %d -> repair +%d -> lag %d; recovered %d job(s), byte-identical %v, checksum match %v, fsck problems %d\nharness wall-clock: %.1f ms",
		r.WarmLogicalBytes/simclock.MiB, r.WarmShippedBytes/simclock.MiB, r.CrossHostDedupX,
		r.ReplicaHolders, r.LagAfterKill, r.RepairAdded, r.LagAfterRepair,
		r.RecoveredJobs, r.ByteIdentical, r.ChecksumMatch, r.FsckProblems,
		float64(r.WallTotalNs)/1e6)
}

// CheckShape verifies the acceptance claims: the cold leg ships the
// bulk of the image, every warm leg deduplicates, the cross-host
// reduction is at least 2x, and the kill phase recovers the job
// byte-identically with a clean store and a fully repaired replica set.
func (r *FederationResult) CheckShape() error {
	if len(r.Rows) != r.Legs {
		return fmt.Errorf("federation: %d rows for %d legs", len(r.Rows), r.Legs)
	}
	cold := r.Rows[0]
	if cold.BytesShipped*2 < cold.BytesLogical {
		return fmt.Errorf("federation: cold leg shipped only %d of %d bytes — the empty destination cannot dedup this much",
			cold.BytesShipped, cold.BytesLogical)
	}
	for _, row := range r.Rows[1:] {
		if row.BytesShipped >= row.BytesLogical {
			return fmt.Errorf("federation: warm leg %d shipped %d of %d bytes — negotiation skipped nothing",
				row.Leg, row.BytesShipped, row.BytesLogical)
		}
		if row.ChunksDeduped == 0 {
			return fmt.Errorf("federation: warm leg %d deduped no chunks", row.Leg)
		}
	}
	if r.CrossHostDedupX < 2.0 {
		return fmt.Errorf("federation: cross-host dedup %.2fx, want >= 2x", r.CrossHostDedupX)
	}
	if r.ReplicaHolders < r.Replicas {
		return fmt.Errorf("federation: %d replica holders, want >= %d", r.ReplicaHolders, r.Replicas)
	}
	if r.LagAfterKill == 0 {
		return fmt.Errorf("federation: killing a holder left no replica lag — the kill phase measured nothing")
	}
	if r.LagAfterRepair != 0 {
		return fmt.Errorf("federation: replica lag %d after repair, want 0", r.LagAfterRepair)
	}
	if r.RecoveredJobs != 1 {
		return fmt.Errorf("federation: recovered %d jobs, want 1", r.RecoveredJobs)
	}
	if !r.ByteIdentical {
		return fmt.Errorf("federation: recovered context manifest is not byte-identical to the dead host's")
	}
	if !r.ChecksumMatch {
		return fmt.Errorf("federation: recovered job's checksum differs from the uninterrupted reference")
	}
	if r.FsckProblems != 0 {
		return fmt.Errorf("federation: %d fsck problems across surviving stores", r.FsckProblems)
	}
	return nil
}

// JSON renders the benchmark as the BENCH_federation.json document.
func (r *FederationResult) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
