package blcr

import (
	"snapify/internal/simclock"
)

// RetryPolicy bounds how a capture or restore stream recovers from a
// transport fault. Attempts are per shard worker — each parallel stream
// retries independently, resuming from its acknowledgement watermark —
// and the backoff is virtual time (charged into the worker's pipeline
// accumulator, never slept).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per stream, first
	// try included. 0 or 1 disables retry.
	MaxAttempts int
	// Backoff is the virtual-time delay before the first retry; it
	// doubles on every further retry. 0 means 1 virtual millisecond.
	Backoff simclock.Duration
}

// Enabled reports whether the policy allows any retry at all.
func (rp RetryPolicy) Enabled() bool { return rp.MaxAttempts > 1 }

// BackoffFor returns the virtual backoff charged before the given
// attempt (attempt 2 is the first retry).
func (rp RetryPolicy) BackoffFor(attempt int) simclock.Duration {
	b := rp.Backoff
	if b <= 0 {
		b = simclock.Duration(1_000_000) // 1 virtual ms
	}
	if attempt > 2 {
		b <<= uint(attempt - 2)
	}
	return b
}

// WithRetry returns a shallow copy of c whose parallel checkpoint and
// restart workers recover from stream faults under the given policy. A
// zero policy passes through unchanged (fail on first fault, matching
// the classic behavior).
func (c *Checkpointer) WithRetry(rp RetryPolicy) *Checkpointer {
	cp := *c
	cp.retry = rp
	return &cp
}

// Retry returns the checkpointer's retry policy.
func (c *Checkpointer) Retry() RetryPolicy { return c.retry }
